package rewind

import "github.com/rewind-db/rewind/internal/obs"

// RegisterMetrics publishes the store's counters — simulated device
// activity, transaction manager totals, log occupancy, recovery and
// checkpoint reports — as gauge families on r, under the rewind_*
// namespace. Each scrape snapshots the underlying stats once and emits
// every family from that snapshot, so a single exposition is internally
// consistent. Call once per store; the registry panics on duplicate
// family names.
func (s *Store) RegisterMetrics(r *obs.Registry) {
	r.Group(func(emitf func(name, help string, v float64)) {
		emit := func(name, help string, v int64) { emitf(name, help, float64(v)) }
		d := s.Stats()
		emit("rewind_device_loads_total", "64-bit word loads issued to the simulated NVM device.", d.Loads)
		emit("rewind_device_cached_stores_total", "Cached (volatile until flushed) word stores.", d.CachedStores)
		emit("rewind_device_nt_stores_total", "Non-temporal durable word stores.", d.NTStores)
		emit("rewind_device_flushes_total", "Dirty cache lines made durable by flushes.", d.Flushes)
		emit("rewind_device_fences_total", "Persistent memory fences.", d.Fences)
		emit("rewind_device_line_writes_total", "Charged NVM line writes after coalescing (the paper's NVM-write unit).", d.LineWrites)
		emit("rewind_device_coalesced_total", "Durable writes absorbed by the same-line coalescing window.", d.Coalesced)
		emit("rewind_device_simulated_ns", "Virtual device clock: total charged latency in nanoseconds.", d.SimulatedNS)

		t := s.TMStats()
		emit("rewind_txns_begun_total", "Transactions begun.", t.Begun)
		emit("rewind_txns_committed_total", "Transactions committed.", t.Committed)
		emit("rewind_txns_rolled_back_total", "Transactions rolled back.", t.RolledBack)
		emit("rewind_log_records_total", "Log records appended across all shards.", t.Records)
		emit("rewind_log_bytes_total", "Cumulative log record footprint in bytes (headers + payloads).", t.LogBytes)
		emit("rewind_checkpoints_total", "Checkpoints taken.", t.Checkpoints)
		var flushes, gcRounds, grouped, uncontended int64
		for _, sh := range t.Shards {
			flushes += sh.Flushes
			gcRounds += sh.GroupCommitRounds
			grouped += sh.GroupedCommits
			uncontended += sh.UncontendedCommits
		}
		emit("rewind_log_flushes_total", "Batch group flushes issued across all log shards.", flushes)
		emit("rewind_gc_rounds_total", "Group-commit rounds led (shared flushes issued by round leaders).", gcRounds)
		emit("rewind_gc_grouped_commits_total", "Commits that shared a group-commit round with at least one other transaction.", grouped)
		emit("rewind_commits_uncontended_total", "Commits that acquired their shard without waiting.", uncontended)

		var live, buckets int64
		for i := 0; i < s.tm.NumShards(); i++ {
			if l := s.tm.ShardLog(i); l != nil {
				rec, bk := l.Occupancy()
				live += int64(rec)
				buckets += int64(bk)
			}
		}
		emit("rewind_log_live_records", "Log records currently live (not yet cleared) across all shards.", live)
		emit("rewind_log_buckets", "Log buckets currently allocated across all shards.", buckets)

		ck := s.LastCheckpoint()
		emit("rewind_checkpoint_last_chunks", "Freeze windows taken by the most recent checkpoint.", int64(ck.Chunks))
		emit("rewind_checkpoint_last_lines_flushed", "Cache lines flushed by the most recent checkpoint.", int64(ck.LinesFlushed))
		emit("rewind_checkpoint_last_max_pause_ns", "Longest single freeze pause of the most recent checkpoint, wall clock.", ck.MaxPauseNs)
		emit("rewind_checkpoint_last_max_pause_sim_ns", "Longest single freeze pause of the most recent checkpoint on the virtual device clock.", ck.MaxPauseSimNs)
		emit("rewind_checkpoint_last_total_ns", "Full wall-clock duration of the most recent checkpoint.", ck.TotalNs)

		rec := s.Recovery
		crash := int64(0)
		if rec.CrashDetected {
			crash = 1
		}
		emit("rewind_recovery_crash_detected", "1 when the last Open found an unclean shutdown and ran crash recovery.", crash)
		emit("rewind_recovery_records_scanned", "Records visited by the last recovery's analysis phase.", int64(rec.RecordsScanned))
		emit("rewind_recovery_redone", "Redo-phase record applications during the last recovery.", int64(rec.Redone))
		emit("rewind_recovery_undone", "Updates compensated during the last recovery's undo phase.", int64(rec.Undone))
		emit("rewind_recovery_losers_aborted", "Transactions rolled back by the last recovery.", int64(rec.LosersAborted))
		emit("rewind_recovery_winners", "Committed transactions found finished by the last recovery.", int64(rec.Winners))

		ai := s.ArenaInfo()
		emit("rewind_arena_size_bytes", "Current arena size (grows on demand up to the cap).", int64(ai.Size))
		emit("rewind_arena_max_bytes", "Arena growth cap; equals size when growth is disabled.", int64(ai.MaxSize))
		emit("rewind_arena_grows_total", "Arena growth events this session.", int64(ai.Grows))
		emit("rewind_arena_segments", "Heap segments (base plus durable extents).", int64(ai.Segments))
		emit("rewind_arena_heap_used_bytes", "Heap bump high-water mark.", int64(ai.HeapUsed))
		emit("rewind_arena_heap_live_bytes", "Bytes in currently allocated heap blocks.", int64(ai.HeapLive))
		emit("rewind_arena_punched_bytes_total", "Bytes hole-punched back to the OS this session.", int64(ai.PunchedBytes))
		emit("rewind_arena_allocated_bytes", "Backing file's actual on-disk footprint (arena size when heap-backed).", ai.AllocatedBytes)
	})
}
