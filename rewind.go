// Package rewind is a Go reproduction of REWIND — the Recovery Write-ahead
// system for In-memory Non-volatile Data-structures (Chatzistergiou, Cintra,
// Viglas; PVLDB 8(5), 2015).
//
// REWIND is a user-mode library for transactional recoverability of
// arbitrary data structures kept directly in byte-addressable non-volatile
// memory (NVM). Persistent data is accessed through loads and stores at
// word granularity; a write-ahead log — itself a recoverable in-NVM data
// structure — guarantees that committed transactions survive crashes and
// uncommitted ones roll back.
//
// Because Go's runtime hides cache-line flush control, this implementation
// runs over a simulated NVM device (see DESIGN.md for the substitution
// argument): the simulator reproduces the paper's persistence contract
// exactly (durable non-temporal stores, cached stores lost on crash,
// flushes, persistent fences, configurable latencies) and adds
// deterministic crash injection, which the test suite uses to validate
// recovery from a torn state at every instruction boundary.
//
// Basic usage:
//
//	st, _ := rewind.Open(rewind.Options{})
//	addr := st.Alloc(16)                     // a persistent block
//	err := st.Atomic(func(tx *rewind.Tx) error {
//	    tx.Write64(addr, 1)                  // logged + applied
//	    tx.Write64(addr+8, 2)
//	    return nil                           // commit (non-nil would roll back)
//	})
//
// The four configurations of the paper (§2) are selected with
// Options.Policy and Options.Layers; the three log implementations (§3)
// with Options.LogKind.
package rewind

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/rewind-db/rewind/internal/core"
	"github.com/rewind-db/rewind/internal/nvm"
	"github.com/rewind-db/rewind/internal/obs"
	"github.com/rewind-db/rewind/internal/pmem"
	"github.com/rewind-db/rewind/internal/rlog"
)

// Policy re-exports the force/no-force choice (§2).
type Policy = core.Policy

// Policies.
const (
	// NoForce leaves user updates cached until a checkpoint; recovery
	// redoes committed work. Lowest logging overhead.
	NoForce = core.NoForce
	// Force persists user updates immediately and clears the log at
	// commit; recovery is two-phase but commits are slower.
	Force = core.Force
)

// Layers re-exports the one-/two-layer logging choice (§2).
type Layers = core.Layers

// Layer choices.
const (
	// OneLayer logs into the bucketed ADLL directly: fastest logging,
	// whole-log scans for selective rollback.
	OneLayer = core.OneLayer
	// TwoLayer indexes records per transaction in an AVL tree: slower
	// logging, fast selective rollback.
	TwoLayer = core.TwoLayer
)

// CommitMode re-exports the undo/redo vs redo-only logging choice.
type CommitMode = core.CommitMode

// Commit modes.
const (
	// UndoRedo is the paper's protocol: every write is logged with both
	// images and applied in place, so any configuration can selectively
	// roll back an individual transaction from the log.
	UndoRedo = core.UndoRedo
	// RedoOnly buffers a transaction's writes privately and publishes them
	// at commit as old-image-free redo records — about half the log volume
	// — with rollback a free buffer discard and recovery skipping the
	// serial undo pass entirely. Requires OneLayer. See core.RedoOnly.
	RedoOnly = core.RedoOnly
)

// LogKind re-exports the log implementation choice (§3).
type LogKind = rlog.Kind

// Log implementations.
const (
	// Simple is the plain atomic doubly-linked list (§3.2).
	Simple = rlog.Simple
	// Optimized blocks records into buckets (§3.3, Figure 2).
	Optimized = rlog.Optimized
	// Batch groups multiple records per flush/fence (§3.3).
	Batch = rlog.Batch
)

// Options configures a Store. The zero value gives the paper's headline
// configuration: one-layer logging, no-force policy, Batch log, 1,000
// record buckets, groups of 8, 150ns NVM write latency.
type Options struct {
	// ArenaSize is the initial NVM arena size in bytes (default 256 MiB).
	ArenaSize int
	// MaxArena, when larger than ArenaSize, lets the arena grow on demand:
	// an allocation that exhausts the heap extends the address space by
	// GrowStep (crash-safely — a torn grow reverts) instead of failing,
	// until MaxArena is reached. Zero or <= ArenaSize disables growth,
	// preserving the fixed-arena behavior.
	MaxArena int
	// GrowStep is the growth increment in bytes (default ArenaSize, i.e.
	// doubling-style growth). Only meaningful with MaxArena set.
	GrowStep int
	// Policy selects Force or NoForce (default NoForce).
	Policy Policy
	// Layers selects OneLayer or TwoLayer (default OneLayer).
	Layers Layers
	// LogKind selects Simple, Optimized or Batch (default Batch).
	// TwoLayer requires Simple or Optimized.
	LogKind LogKind
	// CommitMode selects UndoRedo or RedoOnly (default UndoRedo).
	// RedoOnly requires OneLayer.
	CommitMode CommitMode
	// BucketSize is the records-per-bucket count (default 1,000).
	BucketSize int
	// GroupSize is the records-per-fence group in Batch mode (default 8).
	GroupSize int
	// LogShards stripes the one-layer log over this many independent
	// shard logs (default 1, the paper's single global log). Transactions
	// are hashed to a shard by id and commits on different shards never
	// contend, which is what multi-goroutine commit throughput scales
	// with; see core.Config.LogShards. TwoLayer requires LogShards <= 1.
	LogShards int
	// GroupCommit merges commits from concurrent goroutines into shared
	// log flushes: the first committer leads a round, gathers everyone who
	// commits within GroupCommitWindow (or until GroupCommitMax join), and
	// issues one flush + fence for all of them. Commit still returns only
	// after the flush covering its END record, so acknowledged commits
	// survive crashes exactly as before — the fence bill is just split
	// across the round. Requires the default OneLayer + Batch + NoForce
	// configuration; see core.Config.GroupCommit.
	GroupCommit bool
	// GroupCommitWindow bounds the leader's wait for joiners (default
	// 100µs; negative skips the wait, batching only what arrives while
	// the leader acquires the shard and flushes). The wait is adaptive:
	// with no sign of concurrency the leader flushes immediately and
	// probes with a full window only every 16th solo round, so a lone
	// sequential client pays ~window/16 average added latency; see
	// core.Config.GroupCommitWindow.
	GroupCommitWindow time.Duration
	// GroupCommitMax closes a round early at this many commits (default 64).
	GroupCommitMax int
	// RecoveryWorkers is the number of goroutines the recovery pass at Open
	// uses for its per-shard analysis and redo phases (non-positive: one
	// per CPU, capped at LogShards). Recovery's outcome is byte-identical
	// at any worker count; the knob trades restart latency for CPU. See
	// core.Config.RecoveryWorkers.
	RecoveryWorkers int
	// WriteLatency and FenceLatency configure the simulated device
	// (defaults: 150ns and 100ns). ReadLatency is charged per word load
	// when non-zero (default zero, per the paper's read-cost assumption).
	WriteLatency time.Duration
	FenceLatency time.Duration
	ReadLatency  time.Duration
	// EmulateLatency busy-waits to make wall-clock time track the
	// simulated device, as in the paper's testbed.
	EmulateLatency bool
	// DisableTracking turns off the durable shadow image. Crash and
	// SaveImage become unavailable; throughput improves. Benchmarks use
	// this; applications that want crash simulation must not.
	DisableTracking bool
	// ImagePath, when set, makes Open load a previously saved durable
	// image from this file (if it exists) and Close save one, giving
	// cross-process durability.
	ImagePath string
	// Obs, when non-nil, turns on commit-pipeline phase timing: every
	// commit records its latch-wait, log-append, group-commit-gather,
	// flush+fence and publish times (wall clock and virtual device
	// clock) into the obs histograms. Volatile — not part of the durable
	// shape — and free when nil. The same *obs.Obs is normally shared
	// with the kv and server layers so one registry carries the whole
	// stack (see Store.RegisterMetrics).
	Obs *obs.Obs
	// BackingFile, when set, maps the durable image onto this file for
	// the store's whole lifetime: every durable operation lands in the
	// OS page cache immediately, so even a SIGKILLed process loses
	// nothing it acknowledged — the continuous-durability mode rewindd
	// runs on, stronger than ImagePath's save-at-Close. Reopening an
	// existing backing file runs recovery. Mutually exclusive with
	// ImagePath and with DisableTracking.
	BackingFile string
}

func (o Options) withDefaults() Options {
	if o.ArenaSize <= 0 {
		o.ArenaSize = 256 << 20
	}
	if o.MaxArena < o.ArenaSize {
		o.MaxArena = o.ArenaSize
	}
	if o.GrowStep <= 0 {
		o.GrowStep = o.ArenaSize
	}
	if o.LogKind == 0 && o.Layers == TwoLayer {
		o.LogKind = Optimized
	} else if o.LogKind == 0 {
		o.LogKind = Batch
	}
	return o
}

// Store is an open REWIND store: a simulated NVM arena, a persistent
// allocator, and a transaction recovery manager. All methods are safe for
// concurrent use; concurrency control over user data is the caller's
// responsibility, as in the paper (§4.7).
type Store struct {
	opts  Options
	mem   *nvm.Memory
	alloc *pmem.Allocator
	tm    *core.TM

	mu     sync.Mutex
	extra  int // root base consumed by additional managers
	closed bool

	// Recovery reports what the recovery pass at Open found.
	Recovery core.RecoveryStats
}

// rootBase for the primary manager; further managers stack above it.
const primaryRootBase = 8

// Reserved root slots applications may use for their own structures.
const (
	// AppRootFirst..AppRootLast are root slots never touched by REWIND;
	// applications store the entry points of their persistent data
	// structures there (e.g. a B+-tree header). Slots below AppRootFirst
	// belong to transaction managers: the primary at 8 and additional
	// managers (NewTM) above it — up to eleven at the default shard
	// count, fewer when Options.LogShards widens each manager's slot
	// footprint (core.Config.Slots).
	AppRootFirst = 56
	AppRootLast  = 63
)

var errClosed = errors.New("rewind: store is closed")

// Open creates a store, or reattaches to one when Options.ImagePath names
// an existing image — in which case recovery (§4.5) runs and its outcome is
// available in Store.Recovery.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.BackingFile != "" {
		if opts.ImagePath != "" {
			return nil, errors.New("rewind: BackingFile and ImagePath are mutually exclusive")
		}
		if opts.DisableTracking {
			return nil, errors.New("rewind: BackingFile requires persistence tracking")
		}
		return openBacked(opts)
	}
	mem := nvm.New(nvm.Config{
		Size:             opts.ArenaSize,
		MaxSize:          opts.MaxArena,
		WriteLatency:     opts.WriteLatency,
		FenceLatency:     opts.FenceLatency,
		ReadLatency:      opts.ReadLatency,
		EmulateLatency:   opts.EmulateLatency,
		TrackPersistence: !opts.DisableTracking,
	})
	if opts.ImagePath != "" {
		if img, err := os.ReadFile(opts.ImagePath); err == nil {
			if err := mem.LoadImage(img); err != nil {
				return nil, fmt.Errorf("rewind: loading image %s: %w", opts.ImagePath, err)
			}
			return attach(opts, mem)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	alloc := pmem.Format(mem)
	tm, err := core.New(alloc, coreConfig(opts, primaryRootBase))
	if err != nil {
		return nil, err
	}
	return newStore(opts, mem, alloc, tm, nil), nil
}

// newStore finishes construction. The growth policy is volatile allocator
// state, so every open/attach path re-arms it here from the device's
// actual headroom.
func newStore(opts Options, mem *nvm.Memory, alloc *pmem.Allocator, tm *core.TM, rs *core.RecoveryStats) *Store {
	if mem.MaxSize() > mem.Size() {
		alloc.SetGrowth(opts.GrowStep)
	}
	s := &Store{opts: opts, mem: mem, alloc: alloc, tm: tm}
	if rs != nil {
		s.Recovery = *rs
	}
	return s
}

// openBacked opens a store whose durable image lives in an mmapped file.
// A file holding a formatted heap with a manager is attached with
// recovery; anything less (fresh file, or a process killed inside the very
// first format — before anything could have been acknowledged) is
// formatted from scratch.
func openBacked(opts Options) (s *Store, err error) {
	mem, existed, err := nvm.OpenFile(nvm.Config{
		Size:           opts.ArenaSize,
		MaxSize:        opts.MaxArena,
		WriteLatency:   opts.WriteLatency,
		FenceLatency:   opts.FenceLatency,
		ReadLatency:    opts.ReadLatency,
		EmulateLatency: opts.EmulateLatency,
	}, opts.BackingFile)
	if err != nil {
		return nil, err
	}
	// Release the mapping and its file lock on any failure below, so a
	// misconfigured Open (e.g. fingerprint mismatch) can be retried in
	// the same process with corrected options.
	defer func() {
		if err != nil {
			mem.CloseFile()
		}
	}()
	if existed {
		if alloc, perr := pmem.Open(mem); perr == nil {
			if alloc.Root(primaryRootBase) != nvm.Null {
				tm, rs, err := core.Open(alloc, coreConfig(opts, primaryRootBase))
				if err != nil {
					return nil, err
				}
				return newStore(opts, mem, alloc, tm, rs), nil
			}
			// Heap formatted but no manager yet: died inside first boot.
			tm, err := core.New(alloc, coreConfig(opts, primaryRootBase))
			if err != nil {
				return nil, err
			}
			return newStore(opts, mem, alloc, tm, nil), nil
		} else if !errors.Is(perr, pmem.ErrNotFormatted) {
			return nil, perr
		}
	}
	alloc := pmem.Format(mem)
	tm, err := core.New(alloc, coreConfig(opts, primaryRootBase))
	if err != nil {
		return nil, err
	}
	return newStore(opts, mem, alloc, tm, nil), nil
}

// Reattach opens a store over an existing arena (used after Crash and by
// tests that manage the arena themselves). Recovery runs.
func Reattach(opts Options, mem *nvm.Memory) (*Store, error) {
	return attach(opts.withDefaults(), mem)
}

func attach(opts Options, mem *nvm.Memory) (*Store, error) {
	alloc, err := pmem.Open(mem)
	if err != nil {
		return nil, err
	}
	tm, rs, err := core.Open(alloc, coreConfig(opts, primaryRootBase))
	if err != nil {
		return nil, err
	}
	return newStore(opts, mem, alloc, tm, rs), nil
}

func coreConfig(opts Options, rootBase int) core.Config {
	return core.Config{
		Policy: opts.Policy, Layers: opts.Layers, LogKind: opts.LogKind,
		CommitMode: opts.CommitMode,
		BucketSize: opts.BucketSize, GroupSize: opts.GroupSize,
		LogShards: opts.LogShards, RootBase: rootBase,
		GroupCommit:       opts.GroupCommit,
		GroupCommitWindow: opts.GroupCommitWindow,
		GroupCommitMax:    opts.GroupCommitMax,
		RecoveryWorkers:   opts.RecoveryWorkers,
		Obs:               opts.Obs,
	}
}

// Options returns the options the store was opened with.
func (s *Store) Options() Options { return s.opts }

// Mem exposes the simulated NVM device (stats, crash injection).
func (s *Store) Mem() *nvm.Memory { return s.mem }

// Allocator exposes the persistent allocator.
func (s *Store) Allocator() *pmem.Allocator { return s.alloc }

// TM exposes the primary transaction manager.
func (s *Store) TM() *core.TM { return s.tm }

// Alloc allocates a persistent block of at least size bytes outside any
// transaction (see Tx.Alloc for the transactional pattern).
func (s *Store) Alloc(size int) uint64 { return s.alloc.Alloc(size) }

// Root returns application root slot i (AppRootFirst..AppRootLast).
func (s *Store) Root(i int) uint64 { return s.alloc.Root(i) }

// SetRoot durably publishes addr in application root slot i.
func (s *Store) SetRoot(i int, addr uint64) { s.alloc.SetRoot(i, addr) }

// Read64 loads a word without any transaction.
func (s *Store) Read64(addr uint64) uint64 { return s.mem.Load64(addr) }

// ReadBytes reads n bytes at addr.
func (s *Store) ReadBytes(addr uint64, n int) []byte { return s.tm.ReadBytes(addr, n) }

// Checkpoint trims the log under the no-force policy (§4.6) with the
// default pause budget; it is a no-op under force, whose commits clear
// their own records.
func (s *Store) Checkpoint() { s.tm.Checkpoint() }

// CheckpointPaced runs an incremental checkpoint whose freezes flush at
// most budgetLines cache lines each, so the stall any committing
// transaction observes is bounded by the budget rather than the whole
// dirty cache (0 uses the default budget, negative disables pacing — the
// paper's freeze-all). It returns the pacing report.
func (s *Store) CheckpointPaced(budgetLines int) core.CheckpointStats {
	return s.tm.CheckpointPaced(budgetLines)
}

// LastCheckpoint returns the most recent checkpoint's pacing report.
func (s *Store) LastCheckpoint() core.CheckpointStats { return s.tm.LastCheckpoint() }

// Stats returns the simulated device counters.
func (s *Store) Stats() nvm.Stats { return s.mem.Stats() }

// ArenaInfo is a snapshot of the arena's capacity state: how far it has
// grown, how much of the heap is live versus high-water, and what the
// backing file actually costs on disk after hole punching.
type ArenaInfo struct {
	// Size is the current (possibly grown) arena size; MaxSize the growth
	// cap. Equal when growth is disabled.
	Size, MaxSize int
	// Grows counts successful growth events this session; Segments counts
	// heap segments (base + durable extents).
	Grows, Segments int
	// HeapUsed is the bump high-water mark; HeapLive the bytes in
	// currently allocated blocks — the gap is dead or reusable space.
	HeapUsed, HeapLive int
	// PunchedBytes counts bytes hole-punched back to the OS this session.
	// AllocatedBytes is the backing file's actual on-disk footprint (the
	// arena size when heap-backed).
	PunchedBytes   uint64
	AllocatedBytes int64
}

// ArenaInfo returns a snapshot of arena capacity, growth, and reclamation
// state.
func (s *Store) ArenaInfo() ArenaInfo {
	ab, _ := s.mem.AllocatedBytes()
	return ArenaInfo{
		Size:           s.mem.Size(),
		MaxSize:        s.mem.MaxSize(),
		Grows:          int(s.mem.GrowCount()),
		Segments:       len(s.mem.Extents()) + 1,
		HeapUsed:       s.alloc.HeapUsed(),
		HeapLive:       s.alloc.HeapLive(),
		PunchedBytes:   s.mem.PunchedBytes(),
		AllocatedBytes: ab,
	}
}

// Sync flushes the mmapped backing file to stable storage (msync); a
// no-op for heap-backed stores. rewindd calls this on a -sync-every
// cadence for an extra physical-durability bound on top of the page
// cache.
func (s *Store) Sync() error { return s.mem.Sync() }

// SimNS reads the device's virtual clock: the total simulated latency
// charged so far, in nanoseconds. One atomic load; the observability
// layer samples it around operations to attribute device time.
func (s *Store) SimNS() int64 { return s.mem.SimNS() }

// TMStats returns transaction manager activity counters, including the
// per-shard breakdown in Stats.Shards (appends, group flushes, commits and
// contention-free commits per log shard).
func (s *Store) TMStats() core.Stats { return s.tm.Stats() }

// ShardStats returns the per-shard activity counters alone — the shard
// balance and contention view the scaling benchmark reports.
func (s *Store) ShardStats() []core.ShardStats { return s.tm.Stats().Shards }

// LogBytes returns the cumulative record payload appended to the log across
// all shards — the device-independent log-volume figure the commit modes are
// compared on (redo-only appends roughly half of undo/redo's).
func (s *Store) LogBytes() int64 { return s.tm.Stats().LogBytes }

// Crash simulates a power failure and reattaches with full recovery,
// returning the recovered store. The receiver must not be used afterwards.
func (s *Store) Crash() (*Store, error) {
	if err := s.mem.Crash(); err != nil {
		return nil, err
	}
	return attach(s.opts, s.mem)
}

// SaveImage writes the durable image to path (or Options.ImagePath when
// path is empty).
func (s *Store) SaveImage(path string) error {
	if path == "" {
		path = s.opts.ImagePath
	}
	if path == "" {
		return errors.New("rewind: no image path")
	}
	img, err := s.mem.PersistentImage()
	if err != nil {
		return err
	}
	return os.WriteFile(path, img, 0o644)
}

// Close performs a clean shutdown: under no-force it checkpoints and
// flushes; when Options.ImagePath is set the durable image is saved.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.tm.Close()
	if s.opts.ImagePath != "" {
		return s.SaveImage("")
	}
	if s.opts.BackingFile != "" {
		// Sync the mapped image through to storage (process-death safety
		// never needed this; machine-death safety does) and release the
		// mapping. The store must not be used after Close.
		return s.mem.CloseFile()
	}
	return nil
}

// NewTM creates an additional transaction manager with its own log over the
// same arena — the distributed-logging configuration of §5.3 (one manager
// per worker means one log per worker). Its root slots stack above the
// primary manager's. If the slot range already holds a manager (the store
// was reattached after a crash), the existing manager is reopened and
// recovered instead, so every distributed log recovers independently.
func (s *Store) NewTM() (*core.TM, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slots := coreConfig(s.opts, primaryRootBase).Slots()
	base := primaryRootBase + (s.extra+1)*slots
	if base+slots > AppRootFirst {
		return nil, errors.New("rewind: no root slots left for another manager")
	}
	cfg := coreConfig(s.opts, base)
	var tm *core.TM
	var err error
	if s.alloc.Root(base) != 0 {
		tm, _, err = core.Open(s.alloc, cfg)
	} else {
		tm, err = core.New(s.alloc, cfg)
	}
	if err != nil {
		return nil, err
	}
	s.extra++
	return tm, nil
}
