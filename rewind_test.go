package rewind

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func testStore(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.ArenaSize == 0 {
		opts.ArenaSize = 32 << 20
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allOptionSets() []Options {
	return []Options{
		{Policy: NoForce, Layers: OneLayer, LogKind: Simple},
		{Policy: NoForce, Layers: OneLayer, LogKind: Optimized},
		{Policy: NoForce, Layers: OneLayer, LogKind: Batch},
		{Policy: Force, Layers: OneLayer, LogKind: Batch},
		{Policy: Force, Layers: TwoLayer, LogKind: Optimized},
		{Policy: NoForce, Layers: TwoLayer, LogKind: Optimized},
	}
}

func optName(o Options) string {
	return fmt.Sprintf("%v-%v-%v", o.Layers, o.Policy, o.LogKind)
}

func TestAtomicCommit(t *testing.T) {
	for _, opts := range allOptionSets() {
		t.Run(optName(opts), func(t *testing.T) {
			s := testStore(t, opts)
			addr := s.Alloc(16)
			err := s.Atomic(func(tx *Tx) error {
				if err := tx.Write64(addr, 7); err != nil {
					return err
				}
				return tx.Write64(addr+8, 8)
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Read64(addr); got != 7 {
				t.Fatalf("word0 = %d", got)
			}
			if got := s.Read64(addr + 8); got != 8 {
				t.Fatalf("word1 = %d", got)
			}
		})
	}
}

func TestAtomicErrorRollsBack(t *testing.T) {
	s := testStore(t, Options{})
	addr := s.Alloc(8)
	s.Atomic(func(tx *Tx) error { return tx.Write64(addr, 1) })
	boom := errors.New("boom")
	err := s.Atomic(func(tx *Tx) error {
		tx.Write64(addr, 99)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := s.Read64(addr); got != 1 {
		t.Fatalf("rollback left %d", got)
	}
}

func TestAtomicPanicRollsBackAndRethrows(t *testing.T) {
	s := testStore(t, Options{})
	addr := s.Alloc(8)
	func() {
		defer func() {
			if v := recover(); v != "kaboom" {
				t.Fatalf("recover = %v", v)
			}
		}()
		s.Atomic(func(tx *Tx) error {
			tx.Write64(addr, 99)
			panic("kaboom")
		})
	}()
	if got := s.Read64(addr); got != 0 {
		t.Fatalf("panic rollback left %d", got)
	}
}

func TestTxDoneErrors(t *testing.T) {
	s := testStore(t, Options{})
	addr := s.Alloc(8)
	tx := s.Begin()
	tx.Write64(addr, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write64(addr, 2); !errors.Is(err, ErrTxDone) {
		t.Fatalf("write after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestCrashRecoveryThroughPublicAPI(t *testing.T) {
	for _, opts := range allOptionSets() {
		t.Run(optName(opts), func(t *testing.T) {
			s := testStore(t, opts)
			addr := s.Alloc(32)
			s.SetRoot(AppRootFirst, addr)
			if err := s.Atomic(func(tx *Tx) error {
				for i := uint64(0); i < 4; i++ {
					tx.Write64(addr+i*8, 100+i)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// An uncommitted transaction in flight at the crash.
			tx := s.Begin()
			tx.Write64(addr, 999)

			s2, err := s.Crash()
			if err != nil {
				t.Fatal(err)
			}
			if !s2.Recovery.CrashDetected {
				t.Error("crash not detected")
			}
			got := s2.Root(AppRootFirst)
			if got != addr {
				t.Fatalf("root lost: %#x", got)
			}
			for i := uint64(0); i < 4; i++ {
				if v := s2.Read64(addr + i*8); v != 100+i {
					t.Fatalf("word %d = %d, want %d", i, v, 100+i)
				}
			}
		})
	}
}

func TestImageSaveAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	opts := Options{ArenaSize: 8 << 20, ImagePath: path}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Alloc(8)
	s.SetRoot(AppRootFirst, addr)
	if err := s.Atomic(func(tx *Tx) error { return tx.Write64(addr, 4242) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Fresh process: reopen from the image.
	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	a2 := s2.Root(AppRootFirst)
	if got := s2.Read64(a2); got != 4242 {
		t.Fatalf("value after image reopen = %d", got)
	}
	if s2.Recovery.CrashDetected {
		t.Error("clean close + image reopen reported a crash")
	}
}

func TestFreeDeferredToCommit(t *testing.T) {
	s := testStore(t, Options{Policy: Force, LogKind: Optimized})
	block := s.Alloc(64)
	if err := s.Atomic(func(tx *Tx) error { return tx.Free(block) }); err != nil {
		t.Fatal(err)
	}
	if !s.Allocator().IsFree(block) {
		t.Fatal("block not freed after commit")
	}
	// Rollback keeps the block.
	block2 := s.Alloc(64)
	s.Atomic(func(tx *Tx) error {
		tx.Free(block2)
		return errors.New("abort")
	})
	if s.Allocator().IsFree(block2) {
		t.Fatal("rolled-back Free freed the block")
	}
}

func TestNewTMDistributedLogs(t *testing.T) {
	s := testStore(t, Options{Policy: Force, LogKind: Optimized})
	tm2, err := s.NewTM()
	if err != nil {
		t.Fatal(err)
	}
	a1 := s.Alloc(8)
	a2 := s.Alloc(8)
	// Primary and secondary managers commit independently.
	if err := s.Atomic(func(tx *Tx) error { return tx.Write64(a1, 1) }); err != nil {
		t.Fatal(err)
	}
	tid := tm2.Begin().ID()
	if err := tm2.Write64(tid, a2, 2); err != nil {
		t.Fatal(err)
	}
	if err := tm2.Commit(tid); err != nil {
		t.Fatal(err)
	}
	if s.Read64(a1) != 1 || s.Read64(a2) != 2 {
		t.Fatal("values lost")
	}
	// Managers are limited by the root-slot budget.
	n := 0
	for {
		if _, err := s.NewTM(); err != nil {
			break
		}
		n++
		if n > 64 {
			t.Fatal("no root-slot limit")
		}
	}
}

func TestConcurrentAtomicBlocks(t *testing.T) {
	s := testStore(t, Options{LogKind: Batch})
	const goroutines = 8
	addrs := make([]uint64, goroutines)
	for i := range addrs {
		addrs[i] = s.Alloc(8)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				err := s.Atomic(func(tx *Tx) error {
					return tx.Write64(addrs[g], uint64(k))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := range addrs {
		if got := s.Read64(addrs[g]); got != 49 {
			t.Fatalf("g=%d final = %d", g, got)
		}
	}
}

// TestShardedStoreCrashRecovery drives Options.LogShards through the
// public API: concurrent committed transactions across 4 shards, one
// uncommitted straggler, a simulated power failure, and recovery.
func TestShardedStoreCrashRecovery(t *testing.T) {
	s := testStore(t, Options{LogKind: Batch, LogShards: 4})
	const goroutines = 4
	addrs := make([]uint64, goroutines)
	for i := range addrs {
		addrs[i] = s.Alloc(8)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k <= 50; k++ {
				err := s.Atomic(func(tx *Tx) error {
					return tx.Write64(addrs[g], uint64(1000+k))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := s.TMStats()
	if len(st.Shards) != 4 {
		t.Fatalf("expected 4 shard stats entries, got %d", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.Commits == 0 {
			t.Fatalf("shard %d saw no commits", i)
		}
	}

	// A straggler that never commits.
	straggler := s.Begin()
	if err := straggler.Write64(addrs[0], 9999); err != nil {
		t.Fatal(err)
	}

	s2, err := s.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Recovery.CrashDetected {
		t.Fatal("crash not detected")
	}
	for g := range addrs {
		if got := s2.Read64(addrs[g]); got != 1050 {
			t.Fatalf("g=%d final = %d, want 1050", g, got)
		}
	}
	// The recovered store keeps working with the same shard layout.
	if err := s2.Atomic(func(tx *Tx) error { return tx.Write64(addrs[0], 7) }); err != nil {
		t.Fatal(err)
	}
	if got := s2.Read64(addrs[0]); got != 7 {
		t.Fatalf("post-recovery write = %d", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ArenaSize == 0 || o.LogKind != Batch {
		t.Fatalf("defaults: %+v", o)
	}
	two := Options{Layers: TwoLayer}.withDefaults()
	if two.LogKind != Optimized {
		t.Fatalf("two-layer default log kind = %v", two.LogKind)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := testStore(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAtomicSequences property-tests random sequences of committed and
// aborted transactions against a Go-map model of the store.
func TestQuickAtomicSequences(t *testing.T) {
	for _, opts := range []Options{
		{Policy: NoForce, Layers: OneLayer, LogKind: Batch},
		{Policy: Force, Layers: TwoLayer, LogKind: Optimized},
	} {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			f := func(ops []uint16) bool {
				opts.ArenaSize = 32 << 20
				s, err := Open(opts)
				if err != nil {
					return false
				}
				const slots = 8
				base := s.Alloc(slots * 8)
				model := make(map[uint64]uint64, slots)
				for i, op := range ops {
					slot := uint64(op) % slots
					val := uint64(i + 1)
					abort := op%3 == 0
					s.Atomic(func(tx *Tx) error {
						tx.Write64(base+slot*8, val)
						// A second write in the same transaction.
						other := (slot + 1) % slots
						tx.Write64(base+other*8, val+1000)
						if abort {
							return errors.New("abort")
						}
						model[slot] = val
						model[other] = val + 1000
						return nil
					})
				}
				for slot := uint64(0); slot < slots; slot++ {
					if got := s.Read64(base + slot*8); got != model[slot] {
						return false
					}
				}
				// Crash and verify the model still holds after recovery.
				s2, err := s.Crash()
				if err != nil {
					return false
				}
				for slot := uint64(0); slot < slots; slot++ {
					if got := s2.Read64(base + slot*8); got != model[slot] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
