package server

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// TestBatchCrashMatrix is the deterministic, in-process variant of the
// SIGKILL torture: it drives the server's own request path (Server.apply,
// the whole data plane minus the sockets) and injects a crash at EVERY
// durable-operation boundary inside a BATCH request, restarts, and checks
// the two invariants the protocol acks promise:
//
//  1. every request acked before the batch is fully durable, and
//  2. the crashed batch is all-or-none: either every one of its ops is
//     visible after recovery or none is — never a prefix.
//
// Each crash point runs against a freshly built store so the injection
// counter always lands on the same instruction boundary; the loop ends at
// the first crash point the batch survives outright.
func TestBatchCrashMatrix(t *testing.T) {
	const maxPoints = 20000
	survived := false
	points := 0
	for i := 1; i <= maxPoints && !survived; i++ {
		survived = runBatchCrashPoint(t, i)
		points++
	}
	if !survived {
		t.Fatalf("batch still crashing after %d injection points", maxPoints)
	}
	if points < 10 {
		t.Fatalf("only %d crash points before the batch completed; injection is not covering the batch", points)
	}
	t.Logf("batch crash matrix: %d injection points covered", points-1)
}

// ackedState is what the pre-batch acked requests established.
var ackedKeys = []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// batchOps builds the torture BATCH: overwrites, fresh inserts and
// deletes, spread across stripes.
func batchBody() []byte {
	body := wire.AppendU32(nil, 6)
	add := func(del bool, key uint64, val []byte) []byte {
		kind := byte(0)
		if del {
			kind = 1
		}
		body = append(body, kind)
		body = wire.AppendU64(body, key)
		if !del {
			body = wire.AppendBytes(body, val)
		}
		return body
	}
	body = add(false, 2, []byte("overwritten")) // overwrite acked key
	body = add(false, 101, []byte("fresh-a"))   // fresh inserts
	body = add(false, 102, []byte("fresh-b"))
	body = add(false, 103, []byte("fresh-c"))
	body = add(true, 5, nil) // delete acked keys
	body = add(true, 9, nil)
	return body
}

// runBatchCrashPoint builds a store, acks the base requests, then applies
// the batch with a crash armed before the i-th durable op. It reports
// whether the batch ran to completion without crashing.
func runBatchCrashPoint(t *testing.T, point int) (survived bool) {
	t.Helper()
	st, err := rewind.Open(rewind.Options{
		ArenaSize: 32 << 20, GroupCommit: true, GroupCommitWindow: 0, GroupCommitMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 4, MaxValue: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)

	// Acked phase: every response must be durable whatever happens later.
	for _, k := range ackedKeys {
		body := wire.AppendU64(nil, k)
		body = wire.AppendBytes(body, []byte(fmt.Sprintf("acked-%d", k)))
		resp := srv.apply(nil, uint32(k), wire.OpPut, body)
		if status := resp[8]; status != wire.StatusOK {
			t.Fatalf("setup put %d not acked: status %d", k, status)
		}
	}

	mem := st.Mem()
	mem.SetCrashAfter(point)
	crashed := mem.RunToCrash(func() {
		resp := srv.apply(nil, 99, wire.OpBatch, batchBody())
		if status := resp[8]; status != wire.StatusOK {
			panic(fmt.Sprintf("batch rejected: %s", resp[9:]))
		}
	})
	mem.SetCrashAfter(0)

	// "Restart": recover over the surviving durable image.
	st2, err := rewind.Reattach(st.Options(), mem)
	if err != nil {
		t.Fatal(err)
	}
	kvs2, err := kv.Attach(st2, kv.Config{Stripes: 4, MaxValue: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := kvs2.CheckInvariants(); err != nil {
		t.Fatalf("point %d: %v", point, err)
	}

	// Determine whether the batch landed by its fresh-insert marker, then
	// hold the recovered state to exactly one of the two legal worlds.
	_, batchApplied := kvs2.Get(101)
	if !crashed && !batchApplied {
		t.Fatalf("point %d: batch acked but not applied", point)
	}
	for _, k := range ackedKeys {
		want := []byte(fmt.Sprintf("acked-%d", k))
		switch {
		case batchApplied && k == 2:
			want = []byte("overwritten")
		case batchApplied && (k == 5 || k == 9):
			if v, ok := kvs2.Get(k); ok {
				t.Fatalf("point %d: batch applied but deleted key %d survives as %q", point, k, v)
			}
			continue
		}
		v, ok := kvs2.Get(k)
		if !ok {
			t.Fatalf("point %d: acked key %d lost (batch applied: %v)", point, k, batchApplied)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("point %d: acked key %d = %q, want %q", point, k, v, want)
		}
	}
	for _, k := range []uint64{101, 102, 103} {
		_, ok := kvs2.Get(k)
		if ok != batchApplied {
			t.Fatalf("point %d: batch torn: key 101 present=%v but key %d present=%v",
				point, batchApplied, k, ok)
		}
	}
	return !crashed
}
