package server

import (
	"bufio"
	"bytes"
	"testing"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// FuzzTxnOps feeds arbitrary frame streams through the server's full
// request path (apply — everything but the sockets), with the
// transaction-op conversation as the seed corpus. Properties held: the
// server never panics whatever the decoder hands it, every consumed frame
// produces exactly one well-formed response frame echoing its id, and the
// store's invariants survive the abuse.
func FuzzTxnOps(f *testing.F) {
	put := func(id uint32, key uint64, val string) []byte {
		body := wire.AppendU64(nil, key)
		body = wire.AppendBytes(body, []byte(val))
		return wire.AppendFrame(nil, id, wire.OpPut, body)
	}
	// A full legal conversation: BEGIN, TPUT, for-update TGET, TDEL,
	// COMMIT. The first BEGIN's handle id is 1 (fresh server), so the
	// baked-in txn ids resolve when frames arrive in order — and exercise
	// the unknown-handle path when the fuzzer reorders them.
	tbody := func(tid, key uint64, rest ...byte) []byte {
		b := wire.AppendU64(nil, tid)
		b = wire.AppendU64(b, key)
		return append(b, rest...)
	}
	conv := wire.AppendFrame(nil, 1, wire.OpBegin, nil)
	tput := tbody(1, 5)
	tput = wire.AppendBytes(tput[:16], []byte("v"))
	conv = wire.AppendFrame(conv, 2, wire.OpTxnPut, tput)
	conv = wire.AppendFrame(conv, 3, wire.OpTxnGet, tbody(1, 5, wire.TxnReadForUpdate))
	conv = wire.AppendFrame(conv, 4, wire.OpTxnDel, tbody(1, 9))
	conv = wire.AppendFrame(conv, 5, wire.OpCommit, wire.AppendU64(nil, 1))
	f.Add(conv)
	f.Add(wire.AppendFrame(nil, 1, wire.OpRollback, wire.AppendU64(nil, 3)))
	f.Add(wire.AppendFrame(nil, 2, wire.OpTxnGet, tbody(99, 1, wire.TxnReadPlain)))
	cas := wire.AppendU64(nil, 5)
	cas = append(cas, wire.CasExpectPresent|wire.CasStoreValue)
	cas = wire.AppendBytes(cas, []byte("old"))
	cas = wire.AppendBytes(cas, []byte("new"))
	f.Add(append(put(1, 5, "old"), wire.AppendFrame(nil, 2, wire.OpCas, cas)...))
	getAt := wire.AppendU64(nil, 5)
	getAt = wire.AppendU64(getAt, 2)
	f.Add(append(put(1, 5, "chunky"), wire.AppendFrame(nil, 2, wire.OpGetAt, getAt)...))
	// Truncated transaction bodies: ids without keys, dangling flags.
	f.Add(wire.AppendFrame(nil, 1, wire.OpTxnPut, wire.AppendU64(nil, 1)))
	f.Add(wire.AppendFrame(nil, 1, wire.OpCas, wire.AppendU64(nil, 5)))
	f.Add(wire.AppendFrame(nil, 1, wire.OpCommit, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8<<10 {
			return // bound the arena pressure, not the shape coverage
		}
		st, err := rewind.Open(rewind.Options{ArenaSize: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		kvs, err := kv.Create(st, kv.Config{Stripes: 2, MaxValue: 64})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(kvs)
		br := bufio.NewReader(bytes.NewReader(data))
		for frames := 0; frames < 64; frames++ {
			id, op, body, err := wire.ReadFrame(br)
			if err != nil {
				break
			}
			resp := srv.apply(nil, id, op, body)
			rid, _, _, rerr := wire.ReadFrame(bufio.NewReader(bytes.NewReader(resp)))
			if rerr != nil {
				t.Fatalf("op %d: response is not one well-formed frame: %v", op, rerr)
			}
			if rid != id {
				t.Fatalf("op %d: response id %d for request id %d", op, rid, id)
			}
		}
		if err := kvs.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
