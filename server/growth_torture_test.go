package server

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/rewind-db/rewind/client"
)

// TestArenaGrowth is the capacity acceptance test: a daemon started at a
// small arena must absorb live TCP load past 4x its initial size without
// ever refusing a write (the cap is far away), survive a SIGKILL while
// grown, and reopen the grown (v2, multi-extent) backing file with every
// acknowledged write intact. Skipped under -short (builds a binary and
// streams load for seconds); CI runs it as a dedicated smoke step.
func TestArenaGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; run without -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rewindd")
	build := exec.Command("go", "build", "-o", bin, "github.com/rewind-db/rewind/cmd/rewindd")
	build.Dir = ".." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rewindd: %v\n%s", err, out)
	}
	backing := filepath.Join(dir, "arena.nvm")
	addr := freeAddr(t)

	const initial = 4 << 20
	args := []string{
		"-arena", fmt.Sprint(initial),
		"-max-arena", fmt.Sprint(128 << 20),
		"-grow-step", fmt.Sprint(initial),
		"-checkpoint", "250ms",
		"-sync-every", "100ms",
		"-compact-every", "1",
	}
	daemon := startDaemonArgs(t, bin, addr, backing, args...)

	// Loaders stream acked PUTs of near-max values. Until the kill is
	// announced, a Put error is a capacity failure — the store must grow,
	// not refuse writes, while far below -max-arena.
	const loaders = 4
	type ackLog struct {
		mu    sync.Mutex
		acked map[uint64][]byte
	}
	log := ackLog{acked: map[uint64][]byte{}}
	var killing atomic.Bool
	var loadErr atomic.Pointer[error]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := client.Dial(addr, client.Options{Conns: 1, Retries: -1})
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(g)<<32 | uint64(i)
				val := bytes.Repeat([]byte{byte(g), byte(i), byte(i >> 8)}, 149) // 447 bytes
				if err := cl.Put(key, val); err != nil {
					if !killing.Load() {
						e := fmt.Errorf("loader %d: Put(%d) below the cap: %w", g, key, err)
						loadErr.CompareAndSwap(nil, &e)
					}
					return
				}
				log.mu.Lock()
				log.acked[key] = val
				log.mu.Unlock()
			}
		}(g)
	}

	// Watch STATS until the arena has grown past 4x its initial size.
	mon := client.Dial(addr, client.Options{})
	grown := false
	deadline := time.Now().Add(90 * time.Second)
	var lastSize int
	for time.Now().Before(deadline) {
		if e := loadErr.Load(); e != nil {
			t.Fatal(*e)
		}
		st, err := mon.ServerStats()
		if err == nil {
			lastSize = st.Arena.Size
			if st.Arena.Size >= 4*initial {
				grown = true
				t.Logf("arena grew to %d bytes (%d segments, %d grows)",
					st.Arena.Size, st.Arena.Segments, st.Arena.Grows)
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	mon.Close()
	if !grown {
		t.Fatalf("arena never reached 4x initial size under load (last observed %d bytes)", lastSize)
	}

	// Kill the grown daemon without ceremony.
	killing.Store(true)
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	close(stop)
	wg.Wait()
	if e := loadErr.Load(); e != nil {
		t.Fatal(*e)
	}
	t.Logf("SIGKILLed grown daemon after %d acked writes", len(log.acked))

	// Restart on the same grown backing file: every acked write must be
	// readable and the reopened arena must still be the grown one.
	daemon2 := startDaemonArgs(t, bin, addr, backing, args...)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	cl := client.Dial(addr, client.Options{})
	defer cl.Close()
	for key, want := range log.acked {
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("acked key %d lost after SIGKILL+restart: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %d = %q after restart, want %q", key, got, want)
		}
	}
	st, err := cl.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arena.Size < 4*initial {
		t.Fatalf("restart lost the growth: arena %d bytes, want >= %d", st.Arena.Size, 4*initial)
	}
	if st.Arena.Segments < 2 {
		t.Fatalf("restarted arena reports %d segments, want multi-extent", st.Arena.Segments)
	}
}
