package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/rewind-db/rewind/client"
)

// TestMetricsEndpointSmoke is the end-to-end observability smoke: it
// builds the real rewindd binary, boots it with -metrics-addr, drives a
// little traffic over the wire, then scrapes /metrics, /statsz and pprof
// and asserts the expected metric families are present and parseable.
// When METRICS_SNAPSHOT names a path, the /statsz document is saved there
// (CI uploads it as an artifact). Skipped under -short (it builds a
// binary); CI runs it as a dedicated step.
func TestMetricsEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real daemon; run without -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rewindd")
	build := exec.Command("go", "build", "-o", bin, "github.com/rewind-db/rewind/cmd/rewindd")
	build.Dir = ".." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rewindd: %v\n%s", err, out)
	}
	addr := freeAddr(t)
	metricsAddr := freeAddr(t)

	cmd := exec.Command(bin,
		"-addr", addr,
		"-backing", filepath.Join(dir, "arena.nvm"),
		"-arena", "67108864",
		"-metrics-addr", metricsAddr,
		"-stats-every", "500ms",
		"-slow-op", "1s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()
	waitDial(t, addr)

	// Drive traffic so every family has something to show.
	cl := client.Dial(addr, client.Options{Conns: 2})
	defer cl.Close()
	for i := uint64(0); i < 200; i++ {
		if err := cl.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 200; i++ {
		if _, err := cl.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Delete(3); err != nil {
		t.Fatal(err)
	}

	// /metrics: Prometheus exposition with the families the issue names —
	// op latencies, commit-phase latencies, device fences/flushes, log
	// bytes, group-commit fan-in, checkpoint pauses.
	prom := httpGet(t, "http://"+metricsAddr+"/metrics")
	for _, family := range []string{
		"rewind_op_put_wall_ns", "rewind_op_get_wall_ns",
		"rewind_commit_flush_fence_wall_ns", "rewind_commit_publish_wall_ns",
		"rewind_device_fences_total", "rewind_device_flushes_total",
		"rewind_log_bytes_total", "rewind_gc_rounds_total",
		"rewind_checkpoint_last_max_pause_ns",
		"rewind_kv_puts_total", "rewind_server_requests_total",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// Every exposition line is "name{...} value" or a comment; a torn or
	// malformed line would break any Prometheus scraper.
	for _, line := range strings.Split(strings.TrimSpace(prom), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}

	// /statsz: one flat JSON document.
	statsz := httpGet(t, "http://"+metricsAddr+"/statsz")
	var doc map[string]any
	if err := json.Unmarshal([]byte(statsz), &doc); err != nil {
		t.Fatalf("/statsz is not valid JSON: %v\n%s", err, statsz)
	}
	if len(doc) == 0 {
		t.Fatal("/statsz document is empty")
	}

	// pprof is mounted.
	if body := httpGet(t, "http://"+metricsAddr+"/debug/pprof/cmdline"); !strings.Contains(body, "rewindd") {
		t.Errorf("pprof cmdline does not name the binary: %q", body)
	}

	if path := os.Getenv("METRICS_SNAPSHOT"); path != "" {
		if err := os.WriteFile(path, []byte(statsz), 0o644); err != nil {
			t.Fatalf("writing snapshot artifact: %v", err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(statsz))
	}
}

// waitDial blocks until the daemon accepts TCP connections.
func waitDial(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cl := client.Dial(addr, client.Options{Conns: 1})
		_, err := cl.Stats()
		cl.Close()
		if err == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("rewindd did not start accepting connections")
}

// httpGet fetches a URL and returns its body, failing the test on any
// transport or status error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}
