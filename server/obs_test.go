package server

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/client"
	"github.com/rewind-db/rewind/internal/obs"
	"github.com/rewind-db/rewind/kv"
)

// startObsServer boots a store + server with observability wired through
// every layer into one registry.
func startObsServer(t testing.TB) (*Server, *obs.Registry, string) {
	t.Helper()
	reg := obs.NewRegistry()
	o := obs.New(reg, obs.Config{Logf: t.Logf})
	st, err := rewind.Open(rewind.Options{
		ArenaSize: 64 << 20, GroupCommit: true,
		GroupCommitWindow: 100 * time.Microsecond, GroupCommitMax: 8,
		Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 8, MaxValue: 128, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	st.RegisterMetrics(reg)
	kvs.RegisterMetrics(reg)
	srv := New(kvs)
	srv.RegisterMetrics(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, reg, ln.Addr().String()
}

// TestScrapeUnderLoad hammers the server with GET/PUT/BATCH from several
// connections while concurrently scraping the Prometheus exposition, the
// JSON snapshot, the STATS document, and the flight recorders. Run under
// -race this is the data-race gate; the assertions below check the
// metrics stay internally consistent (monotonic counters, histogram
// counts that match their quantile summaries) while being read mid-write.
func TestScrapeUnderLoad(t *testing.T) {
	srv, reg, addr := startObsServer(t)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.Dial(addr, client.Options{Conns: 1})
			defer cl.Close()
			for i := uint64(0); !stop.Load(); i++ {
				key := uint64(w)*1000 + i%257
				switch i % 4 {
				case 0, 1:
					if err := cl.Put(key, []byte("v")); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := cl.Get(key); err != nil && err != client.ErrNotFound {
						t.Error(err)
						return
					}
				case 3:
					err := cl.Batch([]client.Op{{Key: key, Value: []byte("b")}, {Key: key + 1, Delete: true}})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	var lastRequests, lastPuts int64
	for time.Now().Before(deadline) {
		var prom bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		var js bytes.Buffer
		if err := reg.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(js.Bytes()) {
			t.Fatalf("statsz snapshot is not valid JSON: %s", js.String())
		}
		st := srv.Stats()
		if st.Requests < lastRequests {
			t.Fatalf("requests went backwards: %d -> %d", lastRequests, st.Requests)
		}
		lastRequests = st.Requests
		if st.KV.Puts < lastPuts {
			t.Fatalf("puts went backwards: %d -> %d", lastPuts, st.KV.Puts)
		}
		lastPuts = st.KV.Puts
		for op, l := range st.Latency {
			if l.Count <= 0 {
				t.Fatalf("op %s has a summary but count %d", op, l.Count)
			}
			if l.WallP50 > l.WallP95 || l.WallP95 > l.WallP99 || l.WallP99 > l.WallMax {
				t.Fatalf("op %s quantiles out of order: %+v", op, l)
			}
		}
		for ph, l := range st.CommitPhases {
			if l.WallP50 > l.WallP95 || l.WallP95 > l.WallP99 || l.WallP99 > l.WallMax {
				t.Fatalf("phase %s quantiles out of order: %+v", ph, l)
			}
		}
		for _, fr := range srv.Flights() {
			for _, sp := range fr.Snapshot() {
				if sp.WallNs < 0 || sp.SimNs < 0 {
					t.Fatalf("torn span: %+v", sp)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	st := srv.Stats()
	if st.KV.Puts == 0 || st.Latency["put"].Count == 0 {
		t.Fatalf("no put traffic recorded: %+v", st.Latency)
	}
	if st.CommitPhases["flush_fence"].Count == 0 {
		t.Fatalf("no flush_fence phase observations: %+v", st.CommitPhases)
	}
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	for _, family := range []string{
		"rewind_op_put_wall_ns", "rewind_commit_flush_fence_wall_ns",
		"rewind_device_fences_total", "rewind_log_bytes_total",
		"rewind_gc_rounds_total", "rewind_kv_puts_total",
		"rewind_server_requests_total", "rewind_checkpoint_last_max_pause_ns",
	} {
		if !strings.Contains(prom.String(), family) {
			t.Fatalf("/metrics missing family %s", family)
		}
	}
}

// TestFlightRecorderPerConnection checks each connection's ring holds its
// own recent spans with keys and op kinds filled in.
func TestFlightRecorderPerConnection(t *testing.T) {
	srv, _, addr := startObsServer(t)
	cl := client.Dial(addr, client.Options{Conns: 1})
	defer cl.Close()
	for i := uint64(0); i < 10; i++ {
		if err := cl.Put(100+i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Get(105); err != nil {
		t.Fatal(err)
	}
	flights := srv.Flights()
	if len(flights) != 1 {
		t.Fatalf("flights = %d, want 1", len(flights))
	}
	spans := flights[0].Snapshot()
	if len(spans) != 11 {
		t.Fatalf("spans = %d, want 11", len(spans))
	}
	var gets, puts int
	for _, sp := range spans {
		switch sp.Op {
		case obs.OpGet:
			gets++
			if sp.Key != 105 {
				t.Fatalf("get span key = %d", sp.Key)
			}
		case obs.OpPut:
			puts++
		}
		if sp.WallNs <= 0 {
			t.Fatalf("span without wall time: %+v", sp)
		}
	}
	if gets != 1 || puts != 10 {
		t.Fatalf("gets=%d puts=%d, want 1/10", gets, puts)
	}
}

// TestStatsBackwardCompat checks the extended STATS document decodes into
// a pre-extension client struct (unknown fields ignored) and an extended
// client tolerates a pre-extension server document (missing fields zero).
func TestStatsBackwardCompat(t *testing.T) {
	srv, _, _ := startObsServer(t)
	if err := srv.KV().Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	// Old client: only the original fields.
	var old struct {
		Requests int64
		KV       struct{ Puts int64 }
		LogBytes int64
	}
	if err := json.Unmarshal(doc, &old); err != nil {
		t.Fatalf("old client failed to decode extended STATS: %v", err)
	}
	if old.KV.Puts != 1 {
		t.Fatalf("old client KV.Puts = %d", old.KV.Puts)
	}
	// New struct over an old document: the new fields stay zero.
	oldDoc := []byte(`{"Requests":7,"LogBytes":42}`)
	var cur Stats
	if err := json.Unmarshal(oldDoc, &cur); err != nil {
		t.Fatalf("extended struct failed on old STATS: %v", err)
	}
	if cur.Requests != 7 || cur.LogBytes != 42 || cur.Latency != nil || cur.DeviceFences != 0 {
		t.Fatalf("old-doc decode = %+v", cur)
	}
}

// TestStatsOmitsLatencyWhenOff checks a server without observability
// serves a STATS document with no latency tables at all, so old-looking
// output is preserved byte-shape-wise for obs-off deployments.
func TestStatsOmitsLatencyWhenOff(t *testing.T) {
	srv, _ := startServer(t, false)
	doc, err := json.Marshal(srv.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if containsField(doc, "Latency") || containsField(doc, "CommitPhases") {
		t.Fatalf("obs-off STATS carries latency tables: %s", doc)
	}
}
