package server

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/client"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// startBigServer boots a store whose MaxValue exceeds what one wire frame
// can carry — the configuration that used to poison connections.
func startBigServer(t *testing.T, maxValue int) (*kv.Store, string) {
	t.Helper()
	st, err := rewind.Open(rewind.Options{ArenaSize: 256 << 20, GroupCommit: true,
		GroupCommitWindow: 0, GroupCommitMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 4, MaxValue: maxValue})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return kvs, ln.Addr().String()
}

// bigValue builds a patterned value big enough to exceed one frame, so a
// chunk stitched at the wrong offset cannot compare equal.
func bigValue(n int, seed byte) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(i) ^ seed
	}
	return v
}

// TestOversizedValueRegression is the regression for the headline bug: a
// GET or SCAN of a value larger than wire.MaxFrame used to make the
// server emit a response frame its own ReadFrame bounds reject, killing
// the connection and every pipelined request on it. The fixed server
// answers StatusTooLarge and the client reassembles the value over GETAT
// chunks — on the SAME connection, which stays usable throughout.
func TestOversizedValueRegression(t *testing.T) {
	big := bigValue(wire.MaxBody+12345, 0x5a) // ~1 MiB + change: 2 GETAT chunks
	kvs, addr := startBigServer(t, len(big))

	// The oversized value enters server-side (a client PUT of it could
	// never fit one request frame either).
	if err := kvs.Put(100, big); err != nil {
		t.Fatal(err)
	}

	cl := client.Dial(addr, client.Options{Conns: 1})
	defer cl.Close()
	if err := cl.Put(1, []byte("small-before")); err != nil {
		t.Fatal(err)
	}

	// GET of the oversized value succeeds transparently via chunks.
	v, err := cl.Get(100)
	if err != nil {
		t.Fatalf("Get(oversized) = %v", err)
	}
	if !bytes.Equal(v, big) {
		t.Fatalf("Get(oversized) returned %d bytes, mismatched reassembly", len(v))
	}

	// The connection survived: the poisoning bug killed it right here.
	if err := cl.Put(2, []byte("small-after")); err != nil {
		t.Fatalf("connection dead after oversized GET: %v", err)
	}

	// SCAN across a range containing the oversized value returns every
	// pair, resuming pagination around the chunked key.
	pairs, err := cl.Scan(1, 200, 0)
	if err != nil {
		t.Fatalf("Scan over oversized value = %v", err)
	}
	if len(pairs) != 3 {
		t.Fatalf("Scan returned %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		switch p.Key {
		case 1:
			if string(p.Value) != "small-before" {
				t.Fatalf("pair 1 = %q", p.Value)
			}
		case 2:
			if string(p.Value) != "small-after" {
				t.Fatalf("pair 2 = %q", p.Value)
			}
		case 100:
			if !bytes.Equal(p.Value, big) {
				t.Fatalf("oversized pair: %d bytes, mismatched", len(p.Value))
			}
		default:
			t.Fatalf("unexpected key %d", p.Key)
		}
	}
	if err := cl.Put(3, []byte("still-alive")); err != nil {
		t.Fatalf("connection dead after oversized SCAN: %v", err)
	}
}

// TestOversizedValueWireStatus pins the on-the-wire shape: a raw GET of an
// oversized value gets StatusTooLarge carrying the total size — never a
// frame exceeding MaxFrame — and the connection keeps serving.
func TestOversizedValueWireStatus(t *testing.T) {
	big := bigValue(wire.MaxBody+999, 0x21)
	kvs, addr := startBigServer(t, len(big))
	if err := kvs.Put(7, big); err != nil {
		t.Fatal(err)
	}
	if err := kvs.Put(8, []byte("small")); err != nil {
		t.Fatal(err)
	}

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(wire.AppendFrame(nil, 1, wire.OpGet, wire.AppendU64(nil, 7))); err != nil {
		t.Fatal(err)
	}
	br := newReader(c)
	id, status, body, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatalf("response frame unreadable (the poisoning bug): %v", err)
	}
	if id != 1 || status != wire.StatusTooLarge {
		t.Fatalf("oversized GET: id=%d status=%d, want StatusTooLarge", id, status)
	}
	if len(body) != 8 || binary.LittleEndian.Uint64(body) != uint64(len(big)) {
		t.Fatalf("StatusTooLarge body = %x, want total %d", body, len(big))
	}
	// Same connection, next request: must still work.
	if _, err := c.Write(wire.AppendFrame(nil, 2, wire.OpGet, wire.AppendU64(nil, 8))); err != nil {
		t.Fatal(err)
	}
	id, status, body, err = wire.ReadFrame(br)
	if err != nil || id != 2 || status != wire.StatusOK || string(body) != "small" {
		t.Fatalf("follow-up GET: id=%d status=%d body=%q err=%v", id, status, body, err)
	}
}

// TestChunkedReadConsistency: a chunked GET spans multiple round trips;
// the consistency token must force a restart when the value changes
// mid-assembly, so the client only ever observes one of the two values a
// concurrent writer alternates between — never a stitch of both.
func TestChunkedReadConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megabyte overwrite churn")
	}
	n := wire.MaxBody + 4096
	a, b := bigValue(n, 0x11), bigValue(n, 0xee)
	kvs, addr := startBigServer(t, n)
	if err := kvs.Put(1, a); err != nil {
		t.Fatal(err)
	}
	cl := client.Dial(addr, client.Options{Conns: 1})
	defer cl.Close()

	const flips = 12
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			v := a
			if i%2 == 0 {
				v = b
			}
			if err := kvs.Put(1, v); err != nil {
				panic(err)
			}
		}
	}()
	for i := 0; i < 2*flips; i++ {
		v, err := cl.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v, a) && !bytes.Equal(v, b) {
			t.Fatalf("read %d: torn chunked read (%d bytes, first=%#x last=%#x)",
				i, len(v), v[0], v[len(v)-1])
		}
	}
	wg.Wait()
	if v, err := cl.Get(1); err != nil || (!bytes.Equal(v, a) && !bytes.Equal(v, b)) {
		t.Fatalf("final read torn: %v", err)
	}
}
