package server

// Service-layer coverage for the latch-free read path and the SCAN limit
// plumbing: the read-retry telemetry rewindd serves over STATS, and the
// end-to-end "unlimited means unlimited" contract across the wire
// protocol's paging.

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/client"
	"github.com/rewind-db/rewind/kv"
)

// TestStatsReportReadCounters: STATS carries the kv store's seqlock
// telemetry — ReadRetries / ReadFallbacks — so an operator can see whether
// the optimistic read path is absorbing traffic or thrashing.
func TestStatsReportReadCounters(t *testing.T) {
	_, addr := startServer(t, false)
	cl := client.Dial(addr, client.Options{Conns: 1})
	defer cl.Close()
	if err := cl.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ReadRetries", "ReadFallbacks"} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("STATS document lacks %s: %s", field, raw)
		}
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.KV.Gets < 10 {
		t.Fatalf("stats saw %d gets", st.KV.Gets)
	}
	if st.KV.ReadRetries < 0 || st.KV.ReadFallbacks < 0 {
		t.Fatalf("negative read counters: %+v", st.KV)
	}
}

// TestScanUnlimitedPaginates: a limit-0 client Scan of a store whose
// contents span several server pages returns every pair — the server caps
// each RESPONSE at a frame-sized page, and the client must keep resuming
// until the range is exhausted rather than silently truncating.
func TestScanUnlimitedPaginates(t *testing.T) {
	// MaxValue 4096 shrinks the server's scan page to ~255 pairs, so 600
	// keys force at least three pages.
	st, err := rewind.Open(rewind.Options{ArenaSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 4, MaxValue: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	if page := srv.scanPage(); page >= 600 {
		t.Fatalf("test needs multiple pages; scanPage() = %d", page)
	}
	const n = 600
	var ops []kv.Op
	for k := uint64(1); k <= n; k++ {
		ops = append(ops, kv.Op{Key: k, Value: []byte{byte(k), byte(k >> 8)}})
	}
	if err := kvs.Batch(ops); err != nil {
		t.Fatal(err)
	}

	cl := client.Dial(ln.Addr().String(), client.Options{Conns: 1, DialTimeout: 5 * time.Second})
	defer cl.Close()
	pairs, err := cl.Scan(0, 1<<63, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n {
		t.Fatalf("unlimited scan over %d pages returned %d pairs, want %d",
			(n+srv.scanPage()-1)/srv.scanPage(), len(pairs), n)
	}
	for i, p := range pairs {
		if p.Key != uint64(i+1) {
			t.Fatalf("pair %d has key %d (pagination skipped or repeated)", i, p.Key)
		}
		if len(p.Value) != 2 || p.Value[0] != byte(p.Key) {
			t.Fatalf("pair %d value %x", i, p.Value)
		}
	}
	// Positive limits cut across page boundaries exactly.
	if got, err := cl.Scan(0, 1<<63, 401); err != nil || len(got) != 401 {
		t.Fatalf("limit-401 scan = %d pairs, %v", len(got), err)
	}
}
