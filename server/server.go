// Package server exposes a kv.Store over TCP — the rewindd service layer.
//
// The protocol (internal/wire) is length-prefixed binary: GET / PUT / DEL /
// SCAN / BATCH / STATS frames with a client-chosen request id. Each
// accepted connection gets one goroutine that decodes frames, applies them
// to the store, and answers in arrival order; clients may pipeline as many
// requests as they like. Cross-connection parallelism is the point: many
// connections committing at once is exactly the shape the store's
// group-commit rounds merge into shared log flushes, so the durability ack
// each PUT waits for costs a fraction of a fence.
//
// An acknowledged mutation is durable before its response frame is
// written: the handler only builds the OK frame after kv returns, and kv
// returns after the commit's covering flush.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/internal/obs"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// bufSize sizes the per-connection reader and writer (pipelining depth).
const bufSize = 64 << 10

func newReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, bufSize) }
func newWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, bufSize) }

// scanPage bounds a SCAN response page so that even a page of maximum-
// size values fits one wire frame; clients resume from the last returned
// key for larger ranges.
func (s *Server) scanPage() int {
	page := (wire.MaxFrame - 64) / (12 + s.kv.Config().MaxValue)
	if page < 1 {
		page = 1
	}
	return page
}

// Server serves a kv.Store over a listener.
type Server struct {
	kv  *kv.Store
	obs *obs.Obs // the store's observability state (nil when off)

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	flights  map[net.Conn]*obs.Flight
	closed   bool
	handlers sync.WaitGroup

	accepted atomic.Int64
	requests atomic.Int64
	errored  atomic.Int64

	// Interactive-transaction state (server/txn.go). txnMu guards the
	// server-wide table and every per-connection one; txnIdle is the
	// idle-rollback cap in nanoseconds; the sweeper runs only once Serve
	// has been called and stops at Close.
	txnMu       sync.Mutex
	txns        map[uint64]*liveTxn
	defaultCS   *connState
	txnSeq      atomic.Uint64
	txnIdle     atomic.Int64
	txnsExpired atomic.Int64
	sweepStop   chan struct{}
	sweepStart  sync.Once
	sweepHalt   sync.Once
}

// New wraps a kv store in a server. The server records into the store's
// observability state (kv.Config.Obs): per-request spans with commit
// phase timings, a per-connection flight-recorder ring, and slow-op
// capture. All of it is off (one nil test per request) when the store was
// built without obs.
func New(s *kv.Store) *Server {
	srv := &Server{kv: s, obs: s.Obs(), conns: map[net.Conn]struct{}{},
		sweepStop: make(chan struct{})}
	srv.txnIdle.Store(int64(defaultTxnIdle))
	return srv
}

// KV returns the underlying store.
func (s *Server) KV() *kv.Store { return s.kv }

// trackFlight registers a connection's flight-recorder ring so Flights
// can enumerate live connections' recent operations.
func (s *Server) trackFlight(c net.Conn, fr *obs.Flight) {
	s.mu.Lock()
	if s.flights == nil {
		s.flights = map[net.Conn]*obs.Flight{}
	}
	s.flights[c] = fr
	s.mu.Unlock()
}

func (s *Server) untrackFlight(c net.Conn) {
	s.mu.Lock()
	delete(s.flights, c)
	s.mu.Unlock()
}

// Flights returns the live connections' flight recorders (nil entries
// never appear; empty when observability is off or no connection is
// open). The rings themselves are safe to Snapshot concurrently.
func (s *Server) Flights() []*obs.Flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*obs.Flight, 0, len(s.flights))
	for _, fr := range s.flights {
		out = append(out, fr)
	}
	return out
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close, one goroutine per
// connection.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.startSweeper()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		s.accepted.Add(1)
		go s.handleConn(c)
	}
}

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection, and waits for the
// in-flight handlers to drain, so the caller may safely tear down the kv
// store (and its NVM mapping) afterwards. The kv store itself is left
// open — the daemon owns its shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.sweepHalt.Do(func() { close(s.sweepStop) })
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.handlers.Wait()
	return err
}

func (s *Server) handleConn(c net.Conn) {
	cs := newConnState()
	defer func() {
		c.Close()
		// Disconnect rollback: reap every transaction this connection
		// still holds before the handler goroutine exits.
		s.dropConn(cs)
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.handlers.Done()
	}()
	br := newReader(c)
	bw := newWriter(c)
	var fr *obs.Flight
	if s.obs != nil {
		fr = obs.NewFlight(s.obs.FlightSize())
		s.trackFlight(c, fr)
		defer s.untrackFlight(c)
	}
	var out []byte
	for {
		id, op, body, err := wire.ReadFrame(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.errored.Add(1)
			}
			return
		}
		s.requests.Add(1)
		out = s.applyConn(cs, out[:0], id, op, body, fr)
		if _, err := bw.Write(out); err != nil {
			return
		}
		// Flush before blocking on the next read unless a COMPLETE next
		// frame is already buffered: a pipelined burst is answered with
		// one writev-sized flush, while a partial frame (a client that
		// writes in pieces) never holds an ack hostage.
		if !frameBuffered(br) {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// frameBuffered reports whether br already holds one whole frame.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr)
	// Mirror ReadFrame's bounds exactly: a header with n < 5 is a corrupt
	// frame ReadFrame will reject, not a complete buffered one — treating
	// it as buffered would skip the flush and strand the previous acks.
	return n >= 5 && n <= wire.MaxFrame && br.Buffered() >= 4+int(n)
}

// apply decodes one request, applies it to the store, and appends the
// response frame to dst. It is the whole server data path minus the
// sockets, which is what the deterministic crash tests drive directly;
// transaction ops run against a shared fallback connection state.
func (s *Server) apply(dst []byte, id uint32, op byte, body []byte) []byte {
	return s.applyConn(s.defaultConnState(), dst, id, op, body, nil)
}

// opKind maps a wire op byte to its observability class.
func opKind(op byte) obs.OpKind {
	switch op {
	case wire.OpGet:
		return obs.OpGet
	case wire.OpPut:
		return obs.OpPut
	case wire.OpDel:
		return obs.OpDel
	case wire.OpScan:
		return obs.OpScan
	case wire.OpBatch:
		return obs.OpBatch
	case wire.OpStats:
		return obs.OpStats
	case wire.OpBegin:
		return obs.OpBegin
	case wire.OpCommit:
		return obs.OpCommit
	case wire.OpRollback:
		return obs.OpRollback
	case wire.OpTxnGet:
		return obs.OpTxnGet
	case wire.OpTxnPut:
		return obs.OpTxnPut
	case wire.OpTxnDel:
		return obs.OpTxnDel
	case wire.OpCas:
		return obs.OpCas
	case wire.OpGetAt:
		return obs.OpGetAt
	}
	return obs.OpOther
}

// setKey stamps the decoded key onto the span (nil-safe).
func setKey(span *obs.Span, key uint64) {
	if span != nil {
		span.Key = key
	}
}

// applyConn is the full per-frame data path: decode, apply against the
// store (transaction ops resolve their handles through cs), append the
// response frame. Observability: a span brackets the whole request
// (device-time attribution from the virtual clock), mutating ops thread
// it into the commit pipeline, and the finished span lands in the
// connection's flight ring and, past the threshold, the slow-op log.
func (s *Server) applyConn(cs *connState, dst []byte, id uint32, op byte, body []byte, fr *obs.Flight) []byte {
	span := s.obs.StartSpan(opKind(op), 0)
	if span != nil {
		sim0 := s.kv.Rewind().SimNS()
		defer func() { s.obs.FinishSpan(span, s.kv.Rewind().SimNS()-sim0, fr) }()
	}
	r := &wire.Reader{B: body}
	fail := func(err error) []byte {
		s.errored.Add(1)
		return wire.AppendFrame(dst, id, wire.StatusErr, []byte(err.Error()))
	}
	switch op {
	case wire.OpGet:
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		v, ok := s.kv.Get(key)
		if !ok {
			return wire.AppendFrame(dst, id, wire.StatusNotFound, nil)
		}
		if len(v) > wire.MaxBody {
			// The value cannot ride one frame (MaxValue is unbounded but
			// MaxFrame is not); an unchecked append here would build a frame
			// the client's ReadFrame rejects, poisoning the connection and
			// every pipelined request on it. Tell the client the total so it
			// can switch to GETAT chunks.
			return wire.AppendFrame(dst, id, wire.StatusTooLarge, wire.AppendU64(nil, uint64(len(v))))
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, v)

	case wire.OpPut:
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		v, err := r.Bytes()
		if err != nil {
			return fail(err)
		}
		if err := s.kv.PutSpan(key, v, span); err != nil {
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, nil)

	case wire.OpDel:
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		found, err := s.kv.DeleteSpan(key, span)
		if err != nil {
			return fail(err)
		}
		b := byte(0)
		if found {
			b = 1
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, []byte{b})

	case wire.OpScan:
		from, err := r.U64()
		if err != nil {
			return fail(err)
		}
		to, err := r.U64()
		if err != nil {
			return fail(err)
		}
		limit, err := r.U32()
		if err != nil {
			return fail(err)
		}
		if page := uint32(s.scanPage()); limit == 0 || limit > page {
			limit = page
		}
		setKey(span, from)
		pairs := s.kv.Scan(from, to, int(limit))
		// Byte-budget the page: scanPage's count bound assumes values no
		// larger than MaxValue fit a frame, which stopped holding when
		// MaxValue became unbounded. Encode pairs until the next one would
		// overflow the frame; the client resumes from the last key returned.
		body := wire.AppendU32(nil, 0)
		count := 0
		for _, p := range pairs {
			if len(body)+12+len(p.Value) > wire.MaxBody {
				if count == 0 {
					// The very first pair alone overflows: report its key and
					// total so the client chunk-fetches it via GETAT and
					// resumes the scan past it.
					tl := wire.AppendU64(nil, p.Key)
					tl = wire.AppendU64(tl, uint64(len(p.Value)))
					return wire.AppendFrame(dst, id, wire.StatusTooLarge, tl)
				}
				break
			}
			body = wire.AppendU64(body, p.Key)
			body = wire.AppendBytes(body, p.Value)
			count++
		}
		binary.LittleEndian.PutUint32(body[:4], uint32(count))
		return wire.AppendFrame(dst, id, wire.StatusOK, body)

	case wire.OpBatch:
		ops, err := decodeBatch(r)
		if err != nil {
			return fail(err)
		}
		if err := s.kv.BatchSpan(ops, span); err != nil {
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, nil)

	case wire.OpStats:
		doc, err := json.Marshal(s.Stats())
		if err != nil {
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, doc)

	case wire.OpBegin:
		tid, err := s.beginTxn(cs)
		if err != nil {
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, wire.AppendU64(nil, tid))

	case wire.OpCommit, wire.OpRollback:
		tid, err := r.U64()
		if err != nil {
			return fail(err)
		}
		e, err := s.takeTxn(cs, tid)
		if err != nil {
			return fail(err)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.gone {
			return fail(fmt.Errorf("server: txn %d expired", tid))
		}
		e.gone = true
		if op == wire.OpRollback {
			if err := e.txn.Rollback(); err != nil {
				return fail(err)
			}
			return wire.AppendFrame(dst, id, wire.StatusOK, nil)
		}
		switch err := e.txn.CommitSpan(span); {
		case errors.Is(err, kv.ErrTxnConflict):
			return wire.AppendFrame(dst, id, wire.StatusConflict, []byte(err.Error()))
		case err != nil:
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, nil)

	case wire.OpTxnGet:
		tid, err := r.U64()
		if err != nil {
			return fail(err)
		}
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		mode, err := r.Byte()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		e, err := s.lookupTxn(cs, tid)
		if err != nil {
			return fail(err)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.gone {
			return fail(fmt.Errorf("server: txn %d expired", tid))
		}
		var v []byte
		var ok bool
		if mode == wire.TxnReadForUpdate {
			v, ok, err = e.txn.GetForUpdate(key)
		} else {
			v, ok, err = e.txn.Get(key)
		}
		if err != nil {
			return fail(err)
		}
		if !ok {
			return wire.AppendFrame(dst, id, wire.StatusNotFound, nil)
		}
		if len(v) > wire.MaxBody {
			// Only committed state can be this large — TPUT requests are
			// frame-capped — so GETAT chunks observe the same bytes.
			return wire.AppendFrame(dst, id, wire.StatusTooLarge, wire.AppendU64(nil, uint64(len(v))))
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, v)

	case wire.OpTxnPut:
		tid, err := r.U64()
		if err != nil {
			return fail(err)
		}
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		v, err := r.Bytes()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		e, err := s.lookupTxn(cs, tid)
		if err != nil {
			return fail(err)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.gone {
			return fail(fmt.Errorf("server: txn %d expired", tid))
		}
		if err := e.txn.Put(key, v); err != nil {
			return fail(err)
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, nil)

	case wire.OpTxnDel:
		tid, err := r.U64()
		if err != nil {
			return fail(err)
		}
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		e, err := s.lookupTxn(cs, tid)
		if err != nil {
			return fail(err)
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.gone {
			return fail(fmt.Errorf("server: txn %d expired", tid))
		}
		found, err := e.txn.Delete(key)
		if err != nil {
			return fail(err)
		}
		b := byte(0)
		if found {
			b = 1
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, []byte{b})

	case wire.OpCas:
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		flags, err := r.Byte()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		var expect, value []byte
		if flags&wire.CasExpectPresent != 0 {
			if expect, err = r.Bytes(); err != nil {
				return fail(err)
			}
			if expect == nil {
				expect = []byte{}
			}
		}
		if flags&wire.CasStoreValue != 0 {
			if value, err = r.Bytes(); err != nil {
				return fail(err)
			}
			if value == nil {
				value = []byte{}
			}
		}
		swapped, err := s.kv.CompareAndSwapSpan(key, expect, value, span)
		if err != nil {
			return fail(err)
		}
		b := byte(0)
		if swapped {
			b = 1
		}
		return wire.AppendFrame(dst, id, wire.StatusOK, []byte{b})

	case wire.OpGetAt:
		key, err := r.U64()
		if err != nil {
			return fail(err)
		}
		off, err := r.U64()
		if err != nil {
			return fail(err)
		}
		setKey(span, key)
		chunk, total, token, ok := s.kv.GetAt(key, off, wire.MaxBody-16)
		if !ok {
			return wire.AppendFrame(dst, id, wire.StatusNotFound, nil)
		}
		body := wire.AppendU64(nil, total)
		body = wire.AppendU64(body, token)
		body = append(body, chunk...)
		return wire.AppendFrame(dst, id, wire.StatusOK, body)
	}
	return fail(fmt.Errorf("server: unknown op %d", op))
}

// decodeBatch parses a BATCH body into kv ops.
func decodeBatch(r *wire.Reader) ([]kv.Op, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	// Every op takes at least 9 encoded bytes; a count beyond that is a
	// corrupt (or hostile) frame, not a reason to pre-allocate.
	if int(n) > len(r.B)/9 {
		return nil, fmt.Errorf("server: batch count %d exceeds frame body", n)
	}
	ops := make([]kv.Op, 0, n)
	for i := uint32(0); i < n; i++ {
		kind, err := r.Byte()
		if err != nil {
			return nil, err
		}
		key, err := r.U64()
		if err != nil {
			return nil, err
		}
		op := kv.Op{Key: key, Delete: kind == 1}
		if !op.Delete {
			if op.Value, err = r.Bytes(); err != nil {
				return nil, err
			}
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Stats is the STATS response document.
type Stats struct {
	// Accepted counts connections accepted; Requests counts frames
	// served; Errored counts error responses and decode failures.
	Accepted, Requests, Errored int64
	// TxnsActive is the number of interactive transaction handles
	// currently open across all connections; TxnsExpired counts handles
	// the idle sweeper rolled back.
	TxnsActive, TxnsExpired int64
	// KV is the store's own activity snapshot.
	KV kv.Stats
	// GroupCommitRounds / GroupedCommits aggregate the log shards'
	// group-commit counters: rounds is shared flushes issued, grouped is
	// commits that split a fence with at least one other transaction.
	GroupCommitRounds, GroupedCommits, Commits int64
	// CommitMode is the store's logging protocol ("UR" for undo/redo,
	// "RO" for redo-only); LogBytes is the cumulative record payload
	// appended across all log shards — the volume figure the two modes
	// are compared on.
	CommitMode string
	LogBytes   int64
	// Checkpoints counts completed checkpoints; LastCheckpointPauseNs is
	// the longest single freeze (wall clock) of the most recent one — the
	// worst stall a commit could have seen — and LastCheckpointChunks how
	// many budgeted freezes it was spread over.
	Checkpoints           int64
	LastCheckpointPauseNs int64
	LastCheckpointChunks  int
	// Device counters: the simulated NVM bill the workload has run up —
	// fences and flushes are the commit-durability unit, line writes the
	// paper's NVM-write unit, SimNs the virtual clock. Added in the
	// flight-recorder revision; older clients ignore them and older
	// servers leave them zero, both by JSON's unknown/missing-field rules.
	DeviceFences, DeviceFlushes, DeviceLineWrites, DeviceSimNs int64
	// Latency and CommitPhases summarize the observability histograms
	// (wall and simulated-device quantiles per op kind and per commit
	// phase); SlowOps counts requests past the slow-op threshold. All
	// empty/zero when the server runs without observability.
	Latency      map[string]obs.OpLatency `json:",omitempty"`
	CommitPhases map[string]obs.OpLatency `json:",omitempty"`
	SlowOps      int64
	// Arena reports capacity state: current and maximum arena size, growth
	// events, heap live vs high-water bytes, and the backing file's actual
	// on-disk footprint after hole punching. Zero on older servers.
	Arena rewind.ArenaInfo
}

// Stats snapshots server activity.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:    s.accepted.Load(),
		Requests:    s.requests.Load(),
		Errored:     s.errored.Load(),
		TxnsExpired: s.txnsExpired.Load(),
		KV:          s.kv.Stats(),
	}
	s.txnMu.Lock()
	st.TxnsActive = int64(len(s.txns))
	s.txnMu.Unlock()
	tms := s.kv.Rewind().TMStats()
	st.Checkpoints = tms.Checkpoints
	st.CommitMode = s.kv.Rewind().Options().CommitMode.String()
	st.LogBytes = tms.LogBytes
	for _, sh := range tms.Shards {
		st.GroupCommitRounds += sh.GroupCommitRounds
		st.GroupedCommits += sh.GroupedCommits
		st.Commits += sh.Commits
	}
	ck := s.kv.Rewind().LastCheckpoint()
	st.LastCheckpointPauseNs = ck.MaxPauseNs
	st.LastCheckpointChunks = ck.Chunks
	dev := s.kv.Rewind().Stats()
	st.DeviceFences = dev.Fences
	st.DeviceFlushes = dev.Flushes
	st.DeviceLineWrites = dev.LineWrites
	st.DeviceSimNs = dev.SimulatedNS
	st.Latency = s.obs.OpLatencies()
	st.CommitPhases = s.obs.PhaseLatencies()
	st.SlowOps = s.obs.SlowCount()
	st.Arena = s.kv.Rewind().ArenaInfo()
	return st
}

// RegisterMetrics publishes the server's connection and request counters
// on r under the rewind_server_* namespace.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.Group(func(emit func(name, help string, v float64)) {
		emit("rewind_server_accepted_total", "Connections accepted.", float64(s.accepted.Load()))
		emit("rewind_server_requests_total", "Request frames served.", float64(s.requests.Load()))
		emit("rewind_server_errored_total", "Error responses and decode failures.", float64(s.errored.Load()))
		s.mu.Lock()
		open := len(s.conns)
		s.mu.Unlock()
		emit("rewind_server_open_connections", "Connections currently open.", float64(open))
		s.txnMu.Lock()
		active := len(s.txns)
		s.txnMu.Unlock()
		emit("rewind_server_txns_active", "Interactive transaction handles currently open.", float64(active))
		emit("rewind_server_txns_expired_total", "Transactions rolled back by the idle sweeper.", float64(s.txnsExpired.Load()))
	})
}
