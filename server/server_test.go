package server

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/client"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// startServer boots a store + server on a loopback port and returns the
// server and its address.
func startServer(t testing.TB, gc bool) (*Server, string) {
	t.Helper()
	st, err := rewind.Open(rewind.Options{
		ArenaSize: 64 << 20, GroupCommit: gc,
		GroupCommitWindow: 100 * time.Microsecond, GroupCommitMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 8, MaxValue: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// containsField reports whether a JSON document names the given field —
// the operator-facing contract that a counter is present in STATS at all,
// independent of its value.
func containsField(doc []byte, field string) bool {
	return strings.Contains(string(doc), `"`+field+`"`)
}

func TestEndToEnd(t *testing.T) {
	_, addr := startServer(t, true)
	cl := client.Dial(addr, client.Options{Conns: 2})
	defer cl.Close()

	if _, err := cl.Get(1); err != client.ErrNotFound {
		t.Fatalf("Get on empty store = %v, want ErrNotFound", err)
	}
	if err := cl.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(1)
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get(1) = %q, %v", v, err)
	}
	found, err := cl.Delete(1)
	if err != nil || !found {
		t.Fatalf("Delete(1) = %v, %v", found, err)
	}
	if _, err := cl.Get(1); err != client.ErrNotFound {
		t.Fatalf("Get after delete = %v", err)
	}

	// Batch + scan.
	var ops []client.Op
	for k := uint64(10); k < 30; k++ {
		ops = append(ops, client.Op{Key: k, Value: []byte(fmt.Sprintf("v%d", k))})
	}
	if err := cl.Batch(ops); err != nil {
		t.Fatal(err)
	}
	pairs, err := cl.Scan(15, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 10 {
		t.Fatalf("Scan returned %d pairs, want 10", len(pairs))
	}
	for i, p := range pairs {
		if p.Key != uint64(15+i) || string(p.Value) != fmt.Sprintf("v%d", p.Key) {
			t.Fatalf("pair %d = %d %q", i, p.Key, p.Value)
		}
	}

	// Re-put an existing key: a non-structural value overwrite must take
	// the CAS fast path, and the write-path counters must ride STATS.
	if err := cl.Put(10, []byte("v10-again")); err != nil {
		t.Fatal(err)
	}

	// Stats round-trips as JSON and has seen our traffic.
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats JSON: %v (%q)", err, raw)
	}
	if st.Requests == 0 || st.KV.Puts == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.KV.OverwriteFastPath == 0 {
		t.Fatalf("overwrite of key 10 did not take the fast path: %+v", st.KV)
	}
	for _, field := range []string{"OverwriteFastPath", "LeafLatchWaits", "StripeLatchFallbacks"} {
		if !containsField(raw, field) {
			t.Fatalf("STATS document lacks write-path counter %q: %s", field, raw)
		}
	}

	// Oversized put surfaces the kv error as a status, not a dead conn.
	if err := cl.Put(5, make([]byte, 1000)); err == nil {
		t.Fatal("oversized Put accepted")
	}
	if err := cl.Put(6, []byte("still works")); err != nil {
		t.Fatalf("connection unusable after an error response: %v", err)
	}
}

// TestStatsReportCheckpointPause asserts the checkpoint telemetry rewindd
// serves: after an incremental checkpoint runs against the store, STATS
// must report a completed checkpoint with a non-zero worst freeze pause and
// the freeze count the budget implies — the numbers an operator tunes
// -checkpoint-pause against.
func TestStatsReportCheckpointPause(t *testing.T) {
	srv, addr := startServer(t, false)
	cl := client.Dial(addr, client.Options{Conns: 1})
	defer cl.Close()

	for k := uint64(0); k < 200; k++ {
		if err := cl.Put(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 0 || st.LastCheckpointPauseNs != 0 {
		t.Fatalf("checkpoint stats nonzero before any checkpoint: %+v", st)
	}

	// The daemon's ticker path: a small-budget paced checkpoint.
	cs := srv.KV().Rewind().CheckpointPaced(16)
	if cs.Chunks < 2 {
		t.Fatalf("paced checkpoint of 200 dirty-line puts took %d freezes, want several", cs.Chunks)
	}
	raw, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d after one checkpoint", st.Checkpoints)
	}
	if st.LastCheckpointPauseNs <= 0 {
		t.Fatalf("LastCheckpointPauseNs = %d, want > 0", st.LastCheckpointPauseNs)
	}
	if st.LastCheckpointChunks != cs.Chunks {
		t.Fatalf("LastCheckpointChunks = %d, want %d", st.LastCheckpointChunks, cs.Chunks)
	}
	if st.LastCheckpointPauseNs > cs.TotalNs {
		t.Fatalf("worst pause %dns exceeds the whole checkpoint %dns", st.LastCheckpointPauseNs, cs.TotalNs)
	}
}

// TestConcurrentClients drives many connections in parallel — the group-
// commit fan-in shape — and verifies contents and that rounds were shared.
func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, true)
	const clients, keysPer = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.Dial(addr, client.Options{Conns: 1})
			defer cl.Close()
			for i := 0; i < keysPer; i++ {
				k := uint64(c*keysPer + i + 1)
				if err := cl.Put(k, []byte{byte(c), byte(i)}); err != nil {
					panic(err)
				}
			}
		}(c)
	}
	wg.Wait()

	cl := client.Dial(addr, client.Options{})
	defer cl.Close()
	for c := 0; c < clients; c++ {
		for i := 0; i < keysPer; i++ {
			k := uint64(c*keysPer + i + 1)
			v, err := cl.Get(k)
			if err != nil || len(v) != 2 || v[0] != byte(c) || v[1] != byte(i) {
				t.Fatalf("key %d = %v, %v", k, v, err)
			}
		}
	}
	st := srv.Stats()
	if st.GroupCommitRounds == 0 || st.GroupCommitRounds >= st.Commits {
		t.Errorf("group commit did not batch: rounds=%d commits=%d", st.GroupCommitRounds, st.Commits)
	}
	if st.GroupedCommits == 0 {
		t.Error("no commit shared a round across 8 connections")
	}
}

// TestPipelining sends a burst of raw pipelined requests on one connection
// and checks every response comes back, in order, after the burst.
func TestPipelining(t *testing.T) {
	_, addr := startServer(t, false)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 50
	var burst []byte
	for i := uint32(1); i <= n; i++ {
		body := wire.AppendU64(nil, uint64(i))
		body = wire.AppendBytes(body, []byte{byte(i)})
		burst = wire.AppendFrame(burst, i, wire.OpPut, body)
	}
	if _, err := c.Write(burst); err != nil {
		t.Fatal(err)
	}
	br := newReader(c)
	for i := uint32(1); i <= n; i++ {
		id, status, _, err := wire.ReadFrame(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("response order: got id %d, want %d", id, i)
		}
		if status != wire.StatusOK {
			t.Fatalf("response %d status %d", i, status)
		}
	}
}

// TestPartialFrameDoesNotStallAcks: a response (a durability ack) must be
// flushed before the server blocks on a half-received next frame — a
// client that writes frames in pieces must not have its previous ack held
// hostage.
func TestPartialFrameDoesNotStallAcks(t *testing.T) {
	_, addr := startServer(t, false)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mkPut := func(id uint32, key uint64, val string) []byte {
		body := wire.AppendU64(nil, key)
		body = wire.AppendBytes(body, []byte(val))
		return wire.AppendFrame(nil, id, wire.OpPut, body)
	}
	f1, f2 := mkPut(1, 1, "a"), mkPut(2, 2, "b")
	// One complete frame plus the first 6 bytes of the next.
	if _, err := c.Write(append(append([]byte(nil), f1...), f2[:6]...)); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := newReader(c)
	id, status, _, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatalf("ack for frame 1 stalled behind the partial frame: %v", err)
	}
	if id != 1 || status != wire.StatusOK {
		t.Fatalf("response id=%d status=%d", id, status)
	}
	if _, err := c.Write(f2[6:]); err != nil {
		t.Fatal(err)
	}
	id, status, _, err = wire.ReadFrame(br)
	if err != nil || id != 2 || status != wire.StatusOK {
		t.Fatalf("completed frame 2: id=%d status=%d err=%v", id, status, err)
	}
}

// TestClientRetry kills the client's connection under it and verifies the
// next call redials transparently.
func TestClientRetry(t *testing.T) {
	srv, addr := startServer(t, false)
	cl := client.Dial(addr, client.Options{Conns: 1, Retries: 3})
	defer cl.Close()
	if err := cl.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Kill every server-side connection.
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	// The next call may race the teardown; retries must absorb it.
	v, err := cl.Get(1)
	if err != nil || string(v) != "a" {
		t.Fatalf("Get after connection kill = %q, %v", v, err)
	}
}
