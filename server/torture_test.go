package server

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/rewind-db/rewind/client"
)

// TestServerSIGKILLTorture is the full-stack crash torture the subsystem
// exists to survive: it builds the real rewindd binary, loads it over TCP
// from concurrent clients, SIGKILLs the daemon mid-load, restarts it on
// the same backing file, and verifies that EVERY acknowledged write is
// readable with its exact value. Skipped under -short (it builds a binary
// and runs ~10s); CI runs it as a dedicated smoke step.
func TestServerSIGKILLTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; run without -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rewindd")
	build := exec.Command("go", "build", "-o", bin, "github.com/rewind-db/rewind/cmd/rewindd")
	build.Dir = ".." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rewindd: %v\n%s", err, out)
	}
	backing := filepath.Join(dir, "arena.nvm")
	addr := freeAddr(t)

	daemon := startDaemon(t, bin, addr, backing)

	// Load phase: concurrent clients stream acked PUTs until the kill.
	const loaders = 4
	type ackLog struct {
		mu    sync.Mutex
		acked map[uint64][]byte
	}
	log := ackLog{acked: map[uint64][]byte{}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := client.Dial(addr, client.Options{Conns: 1, Retries: -1})
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(g)<<32 | uint64(i)
				val := []byte(fmt.Sprintf("g%d-i%d", g, i))
				if err := cl.Put(key, val); err != nil {
					return // the kill raced this request: it was never acked
				}
				log.mu.Lock()
				log.acked[key] = val
				log.mu.Unlock()
			}
		}(g)
	}

	// Let load build, then kill without ceremony.
	time.Sleep(1500 * time.Millisecond)
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()
	close(stop)
	wg.Wait()

	if len(log.acked) < loaders {
		t.Fatalf("only %d acked writes before the kill; load phase did not run", len(log.acked))
	}
	t.Logf("SIGKILLed daemon after %d acked writes", len(log.acked))

	// Restart on the same backing file and verify read-your-acked-writes.
	daemon2 := startDaemon(t, bin, addr, backing)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()
	cl := client.Dial(addr, client.Options{})
	defer cl.Close()
	for key, want := range log.acked {
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("acked key %d lost after SIGKILL+restart: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked key %d = %q after restart, want %q", key, got, want)
		}
	}
}

// startDaemon launches rewindd with the torture defaults: a big arena
// plus a tight checkpoint interval keep the NoForce log trimmed under
// continuous load, so neither the load phase nor the recovery replay can
// exhaust the heap mid-test, and a periodic msync bounds how far the
// durable image may trail the page cache when the SIGKILL lands.
func startDaemon(t *testing.T, bin, addr, backing string) *exec.Cmd {
	t.Helper()
	return startDaemonArgs(t, bin, addr, backing,
		"-arena", "134217728", "-checkpoint", "300ms", "-sync-every", "100ms")
}

// startDaemonArgs launches rewindd with the given extra flags and waits
// until it accepts connections.
func startDaemonArgs(t *testing.T, bin, addr, backing string, extra ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr, "-backing", backing}, extra...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return cmd
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("rewindd did not start accepting connections")
	return nil
}

// freeAddr picks a loopback port that was free a moment ago.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
