package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rewind-db/rewind/kv"
)

// maxTxnsPerConn bounds the open transaction handles one connection may
// hold: a leaky client (or a hostile one) caps its own damage instead of
// growing the server-wide table without bound.
const maxTxnsPerConn = 1024

// defaultTxnIdle is how long an open transaction may go untouched before
// the sweeper rolls it back. Interactive handles hold no kv latches, so
// the cap protects only table memory and operator sanity — it is generous.
const defaultTxnIdle = 60 * time.Second

// liveTxn is one open interactive transaction pinned to its connection.
// mu serializes the kv.Txn (handles are not concurrency-safe) between the
// connection's handler and the idle sweeper; gone marks a handle that has
// been finished (committed, rolled back, expired, or disconnect-reaped) —
// set only under mu, after which the kv.Txn must not be touched again.
type liveTxn struct {
	id      uint64
	cs      *connState
	lastUse atomic.Int64 // UnixNano of the last frame that named this txn

	mu   sync.Mutex
	txn  *kv.Txn
	gone bool
}

// connState is the per-connection transaction table. Its map is guarded
// by the server's txnMu (one lock for the server-wide table and every
// per-connection one: handle traffic is a few map ops per frame, and one
// lock keeps begin/lookup/expire/disconnect mutually consistent).
type connState struct {
	txns map[uint64]*liveTxn
}

func newConnState() *connState { return &connState{txns: map[uint64]*liveTxn{}} }

// SetTxnIdle sets the idle cap after which the sweeper rolls back an
// untouched transaction. Takes effect from the next sweep tick.
func (s *Server) SetTxnIdle(d time.Duration) {
	if d <= 0 {
		d = defaultTxnIdle
	}
	s.txnIdle.Store(int64(d))
}

// beginTxn opens a kv transaction and registers it under a fresh id,
// pinned to cs.
func (s *Server) beginTxn(cs *connState) (uint64, error) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	if len(cs.txns) >= maxTxnsPerConn {
		return 0, fmt.Errorf("server: connection already holds %d open transactions", len(cs.txns))
	}
	id := s.txnSeq.Add(1)
	e := &liveTxn{id: id, cs: cs, txn: s.kv.BeginTxn()}
	e.lastUse.Store(time.Now().UnixNano())
	if s.txns == nil {
		s.txns = map[uint64]*liveTxn{}
	}
	s.txns[id] = e
	cs.txns[id] = e
	return id, nil
}

// lookupTxn resolves a txn id through the CONNECTION's table — a handle
// is only ever visible to the connection that opened it — and touches its
// idle clock.
func (s *Server) lookupTxn(cs *connState, id uint64) (*liveTxn, error) {
	s.txnMu.Lock()
	e := cs.txns[id]
	s.txnMu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("server: unknown or expired txn %d", id)
	}
	e.lastUse.Store(time.Now().UnixNano())
	return e, nil
}

// takeTxn is lookupTxn plus removal from both tables: COMMIT and ROLLBACK
// consume the handle whatever their outcome.
func (s *Server) takeTxn(cs *connState, id uint64) (*liveTxn, error) {
	s.txnMu.Lock()
	e := cs.txns[id]
	if e != nil {
		delete(cs.txns, id)
		delete(s.txns, id)
	}
	s.txnMu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("server: unknown or expired txn %d", id)
	}
	return e, nil
}

// dropConn reaps every transaction the (now gone) connection still holds:
// buffered writes are discarded, nothing was ever logged. This is the
// disconnect-rollback guarantee — a client that dies mid-transaction
// leaks no handle and publishes no partial state.
func (s *Server) dropConn(cs *connState) {
	s.txnMu.Lock()
	es := make([]*liveTxn, 0, len(cs.txns))
	for id, e := range cs.txns {
		delete(cs.txns, id)
		delete(s.txns, id)
		es = append(es, e)
	}
	s.txnMu.Unlock()
	for _, e := range es {
		e.mu.Lock()
		if !e.gone {
			e.gone = true
			_ = e.txn.Rollback()
		}
		e.mu.Unlock()
	}
}

// startSweeper launches the idle-transaction sweeper. Called from Serve —
// not New — so the many short-lived servers the crash matrices build
// around apply() never leak a goroutine.
func (s *Server) startSweeper() {
	s.sweepStart.Do(func() { go s.sweepLoop() })
}

func (s *Server) sweepLoop() {
	for {
		idle := time.Duration(s.txnIdle.Load())
		tick := idle / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		select {
		case <-s.sweepStop:
			return
		case <-time.After(tick):
		}
		s.sweepExpired(time.Now().Add(-idle).UnixNano())
	}
}

// sweepExpired rolls back every transaction untouched since deadline. The
// removal happens under txnMu (so a racing frame naming the txn gets a
// clean "unknown or expired" error instead of a half-dead handle) and the
// rollback under the handle's own mu (so it never races an op the handler
// is mid-applying).
func (s *Server) sweepExpired(deadline int64) {
	var expired []*liveTxn
	s.txnMu.Lock()
	for id, e := range s.txns {
		if e.lastUse.Load() < deadline {
			delete(s.txns, id)
			delete(e.cs.txns, id)
			expired = append(expired, e)
		}
	}
	s.txnMu.Unlock()
	for _, e := range expired {
		e.mu.Lock()
		if !e.gone {
			e.gone = true
			_ = e.txn.Rollback()
			s.txnsExpired.Add(1)
		}
		e.mu.Unlock()
	}
}

// defaultConnState returns the shared fallback connection state that
// socketless callers (apply — the crash and fuzz harnesses) run under.
func (s *Server) defaultConnState() *connState {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	if s.defaultCS == nil {
		s.defaultCS = newConnState()
	}
	return s.defaultCS
}
