package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/rewind-db/rewind"
	"github.com/rewind-db/rewind/client"
	"github.com/rewind-db/rewind/internal/wire"
	"github.com/rewind-db/rewind/kv"
)

// TestTxnCrashMatrix is the interactive-transaction variant of the batch
// crash matrix: a whole BEGIN…TPUT…TDEL…COMMIT conversation runs with a
// crash injected before every durable-operation boundary, under both
// logging protocols. Buffered TPUT/TDEL frames touch no device state, so
// every injection point lands inside COMMIT — exactly the window the
// all-or-none promise covers:
//
//  1. every request acked before BEGIN stays durable,
//  2. the crashed transaction is all-or-none — never a prefix, and
//  3. a completed conversation leaves no handle behind in the server
//     table.
func TestTxnCrashMatrix(t *testing.T) {
	for _, mode := range []rewind.CommitMode{rewind.UndoRedo, rewind.RedoOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			const maxPoints = 20000
			survived := false
			points := 0
			for i := 1; i <= maxPoints && !survived; i++ {
				survived = runTxnCrashPoint(t, mode, i)
				points++
			}
			if !survived {
				t.Fatalf("txn commit still crashing after %d injection points", maxPoints)
			}
			if points < 10 {
				t.Fatalf("only %d crash points before the commit completed; injection is not covering it", points)
			}
			t.Logf("txn crash matrix (%s): %d injection points covered", mode, points-1)
		})
	}
}

// runTxnCrashPoint builds a store, acks the base puts, then runs the full
// transactional conversation through the server's request path with a
// crash armed before the point-th durable op. Reports whether the commit
// ran to completion without crashing.
func runTxnCrashPoint(t *testing.T, mode rewind.CommitMode, point int) (survived bool) {
	t.Helper()
	st, err := rewind.Open(rewind.Options{
		ArenaSize: 32 << 20, CommitMode: mode,
		GroupCommit: true, GroupCommitWindow: 0, GroupCommitMax: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 4, MaxValue: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)

	for _, k := range ackedKeys {
		body := wire.AppendU64(nil, k)
		body = wire.AppendBytes(body, []byte(fmt.Sprintf("acked-%d", k)))
		resp := srv.apply(nil, uint32(k), wire.OpPut, body)
		if status := resp[8]; status != wire.StatusOK {
			t.Fatalf("setup put %d not acked: status %d", k, status)
		}
	}

	mem := st.Mem()
	mem.SetCrashAfter(point)
	crashed := mem.RunToCrash(func() {
		resp := srv.apply(nil, 90, wire.OpBegin, nil)
		if resp[8] != wire.StatusOK {
			panic(fmt.Sprintf("begin rejected: %s", resp[9:]))
		}
		tid := binary.LittleEndian.Uint64(resp[9:17])
		tput := func(id uint32, key uint64, val string) {
			body := wire.AppendU64(nil, tid)
			body = wire.AppendU64(body, key)
			body = wire.AppendBytes(body, []byte(val))
			if resp := srv.apply(nil, id, wire.OpTxnPut, body); resp[8] != wire.StatusOK {
				panic(fmt.Sprintf("tput %d rejected: %s", key, resp[9:]))
			}
		}
		tdel := func(id uint32, key uint64) {
			body := wire.AppendU64(nil, tid)
			body = wire.AppendU64(body, key)
			if resp := srv.apply(nil, id, wire.OpTxnDel, body); resp[8] != wire.StatusOK {
				panic(fmt.Sprintf("tdel %d rejected: %s", key, resp[9:]))
			}
		}
		tput(91, 2, "overwritten") // overwrite acked key
		tput(92, 201, "fresh-a")   // fresh inserts (the all-or-none marker)
		tput(93, 202, "fresh-b")
		tput(94, 203, "fresh-c")
		tdel(95, 5) // delete acked keys
		tdel(96, 9)
		resp = srv.apply(nil, 99, wire.OpCommit, wire.AppendU64(nil, tid))
		if resp[8] != wire.StatusOK {
			panic(fmt.Sprintf("commit rejected: %s", resp[9:]))
		}
	})
	mem.SetCrashAfter(0)

	if !crashed {
		// The conversation completed: COMMIT must have consumed the handle.
		srv.txnMu.Lock()
		live := len(srv.txns)
		srv.txnMu.Unlock()
		if live != 0 {
			t.Fatalf("point %d: %d txn handles leaked after commit", point, live)
		}
	}

	st2, err := rewind.Reattach(st.Options(), mem)
	if err != nil {
		t.Fatal(err)
	}
	kvs2, err := kv.Attach(st2, kv.Config{Stripes: 4, MaxValue: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := kvs2.CheckInvariants(); err != nil {
		t.Fatalf("point %d: %v", point, err)
	}

	_, applied := kvs2.Get(201)
	if !crashed && !applied {
		t.Fatalf("point %d: commit acked but not applied", point)
	}
	for _, k := range ackedKeys {
		want := []byte(fmt.Sprintf("acked-%d", k))
		switch {
		case applied && k == 2:
			want = []byte("overwritten")
		case applied && (k == 5 || k == 9):
			if v, ok := kvs2.Get(k); ok {
				t.Fatalf("point %d: txn applied but deleted key %d survives as %q", point, k, v)
			}
			continue
		}
		v, ok := kvs2.Get(k)
		if !ok {
			t.Fatalf("point %d: acked key %d lost (txn applied: %v)", point, k, applied)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("point %d: acked key %d = %q, want %q", point, k, v, want)
		}
	}
	for _, k := range []uint64{201, 202, 203} {
		_, ok := kvs2.Get(k)
		if ok != applied {
			t.Fatalf("point %d: txn torn: key 201 present=%v but key %d present=%v",
				point, applied, k, ok)
		}
	}
	return !crashed
}

// TestTxnEndToEnd drives the interactive-transaction surface over real
// TCP: read-your-writes inside the handle, invisibility before commit,
// visibility after, buffered delete, rollback discarding everything, and
// the conflict path when a for-update read is overwritten underneath.
func TestTxnEndToEnd(t *testing.T) {
	srv, addr := startServer(t, true)
	cl := client.Dial(addr, client.Options{Conns: 2})
	defer cl.Close()

	if err := cl.Put(1, []byte("base")); err != nil {
		t.Fatal(err)
	}

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(1, []byte("txn")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(2, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the handle.
	if v, err := tx.Get(1); err != nil || string(v) != "txn" {
		t.Fatalf("txn Get(1) = %q, %v", v, err)
	}
	if v, err := tx.Get(2); err != nil || string(v) != "fresh" {
		t.Fatalf("txn Get(2) = %q, %v", v, err)
	}
	// Buffered delete of a buffered write.
	if found, err := tx.Delete(2); err != nil || !found {
		t.Fatalf("txn Delete(2) = %v, %v", found, err)
	}
	if _, err := tx.Get(2); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("txn Get after buffered delete = %v", err)
	}
	// Invisible outside until commit.
	if v, err := cl.Get(1); err != nil || string(v) != "base" {
		t.Fatalf("non-txn Get(1) = %q, %v before commit", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get(1); err != nil || string(v) != "txn" {
		t.Fatalf("Get(1) after commit = %q, %v", v, err)
	}
	if _, err := cl.Get(2); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("deleted-in-txn key visible after commit: %v", err)
	}
	// Finished handle rejects further use.
	if err := tx.Put(3, []byte("x")); !errors.Is(err, client.ErrTxnFinished) {
		t.Fatalf("Put on committed txn = %v", err)
	}

	// Rollback discards buffered writes.
	tx, err = cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(3, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(3); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("rolled-back write visible: %v", err)
	}

	// Conflict: a for-update read invalidated by an outside writer.
	tx, err = cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tx.GetForUpdate(1); err != nil || string(v) != "txn" {
		t.Fatalf("GetForUpdate(1) = %q, %v", v, err)
	}
	if err := tx.Put(1, []byte("loser")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(1, []byte("winner")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("Commit over invalidated read = %v, want ErrConflict", err)
	}
	if v, err := cl.Get(1); err != nil || string(v) != "winner" {
		t.Fatalf("Get(1) after conflict = %q, %v", v, err)
	}
	st := srv.Stats()
	if st.KV.TxnConflicts == 0 {
		t.Fatalf("conflict not counted: %+v", st.KV)
	}
	if st.TxnsActive != 0 {
		t.Fatalf("TxnsActive = %d after all handles finished", st.TxnsActive)
	}
}

// TestTxnDisconnectRollback: a client that dies mid-transaction leaks no
// handle and publishes no buffered state — the server reaps the handle
// when the connection drops.
func TestTxnDisconnectRollback(t *testing.T) {
	srv, addr := startServer(t, true)
	cl := client.Dial(addr, client.Options{Conns: 1})
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(42, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if a := srv.Stats().TxnsActive; a != 1 {
		t.Fatalf("TxnsActive = %d with one open txn", a)
	}
	cl.Close() // drop the connection without commit or rollback

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().TxnsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("txn handle not reaped %v after disconnect", 5*time.Second)
		}
		time.Sleep(time.Millisecond)
	}
	cl2 := client.Dial(addr, client.Options{Conns: 1})
	defer cl2.Close()
	if _, err := cl2.Get(42); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("buffered write of a dead connection visible: %v", err)
	}
	if rb := srv.Stats().KV.TxnRollbacks; rb == 0 {
		t.Fatal("disconnect reap did not count as a rollback")
	}
}

// TestTxnIdleExpiry: the sweeper rolls back a transaction idle past the
// cap; subsequent frames naming it get a clean error and its buffered
// writes never surface.
func TestTxnIdleExpiry(t *testing.T) {
	st, err := rewind.Open(rewind.Options{ArenaSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := kv.Create(st, kv.Config{Stripes: 4, MaxValue: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(kvs)
	srv.SetTxnIdle(40 * time.Millisecond) // before Serve: the sweeper ticks fast
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	cl := client.Dial(ln.Addr().String(), client.Options{Conns: 1})
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(7, []byte("ghost")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().TxnsExpired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle txn never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = tx.Put(8, []byte("late"))
	if err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Fatalf("Put on expired txn = %v, want unknown-or-expired error", err)
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expired-txn error is %T, want *client.ServerError", err)
	}
	if _, err := cl.Get(7); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("expired txn's buffered write visible: %v", err)
	}
}

// TestFrameBuffered pins the header bounds frameBuffered shares with
// ReadFrame: n=5 (the smallest legal frame) counts as buffered once its
// bytes are in, n=4 (corrupt: shorter than id+op) must NOT count as
// buffered even though all its bytes are in — ReadFrame will reject it,
// and claiming it is buffered would skip the ack flush before the stall.
func TestFrameBuffered(t *testing.T) {
	mk := func(n uint32, payload int) *bufio.Reader {
		raw := binary.LittleEndian.AppendUint32(nil, n)
		raw = append(raw, make([]byte, payload)...)
		br := bufio.NewReader(bytes.NewReader(raw))
		br.Peek(1) // force the fill
		return br
	}
	if frameBuffered(mk(4, 4)) {
		t.Fatal("n=4 (below the 5-byte id+op minimum) reported as a buffered frame")
	}
	if !frameBuffered(mk(5, 5)) {
		t.Fatal("n=5 (minimal legal frame, fully buffered) not reported as buffered")
	}
	if frameBuffered(mk(5, 4)) {
		t.Fatal("n=5 with one body byte missing reported as buffered")
	}
	if frameBuffered(mk(wire.MaxFrame+1, 8)) {
		t.Fatal("n>MaxFrame reported as buffered")
	}
}

// TestTxnUnknownHandle: frames naming a handle the connection never
// opened (or another connection owns) get a clean error, not a hang or a
// cross-connection hijack.
func TestTxnUnknownHandle(t *testing.T) {
	_, addr := startServer(t, true)
	clA := client.Dial(addr, client.Options{Conns: 1})
	defer clA.Close()
	clB := client.Dial(addr, client.Options{Conns: 1})
	defer clB.Close()

	txA, err := clA.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Raw frame from B naming A's handle id: conn pinning must reject it.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body := wire.AppendU64(nil, txA.ID())
	body = wire.AppendU64(body, 1)
	body = wire.AppendBytes(body, []byte("hijack"))
	if _, err := c.Write(wire.AppendFrame(nil, 1, wire.OpTxnPut, body)); err != nil {
		t.Fatal(err)
	}
	br := newReader(c)
	_, status, resp, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if status != wire.StatusErr || !strings.Contains(string(resp), "unknown or expired") {
		t.Fatalf("cross-connection txn op: status %d %q", status, resp)
	}
	if err := txA.Rollback(); err != nil {
		t.Fatal(err)
	}
}
