package rewind

import (
	"errors"
	"fmt"

	"github.com/rewind-db/rewind/internal/core"
	"github.com/rewind-db/rewind/internal/nvm"
	"github.com/rewind-db/rewind/internal/obs"
)

// Tx is a handle on one REWIND transaction. It corresponds to the
// transaction identifier the runtime creates at the top of a
// persistent_atomic block (paper §2, Listing 2): every critical update goes
// through Write64/WriteBytes, which log ahead of the write (WAL), and the
// block ends with Commit or Rollback.
//
// Tx wraps a core.Txn handle that pins the transaction's log shard and
// table entry, so every call below goes straight to the shard — no global
// manager mutex, no tid-keyed map lookup on the hot path.
//
// A Tx is not safe for concurrent use by multiple goroutines; run one
// transaction per goroutine instead (the manager itself is concurrent).
type Tx struct {
	s    *Store
	h    *core.Txn
	done bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	return &Tx{s: s, h: s.tm.Begin()}
}

// BeginOn starts a transaction pinned to log shard shard%NumShards. Callers
// that funnel all writers of one datum onto one shard inherit the shard
// log's FIFO flush order as a crash-consistency guarantee: the set of
// transactions that recovery declares winners is always a prefix of that
// datum's commit order (no committed-later transaction can survive a crash
// that kills a committed-earlier one).
func (s *Store) BeginOn(shard int) *Tx {
	return &Tx{s: s, h: s.tm.BeginOn(shard)}
}

// NumShards reports the number of log shards (Options.LogShards resolved).
func (s *Store) NumShards() int { return s.tm.NumShards() }

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.h.ID() }

// ErrTxDone is returned when a finished transaction is used again.
var ErrTxDone = errors.New("rewind: transaction already finished")

func (tx *Tx) active() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// Write64 logs and applies one word write (the expansion of a critical
// update inside a persistent_atomic block).
func (tx *Tx) Write64(addr, val uint64) error {
	if err := tx.active(); err != nil {
		return err
	}
	return tx.h.Write64(addr, val)
}

// WriteBytes logs and applies a multi-word write as a single span record:
// one log insert (and one flush + fence under Simple/Optimized) covers the
// whole run, instead of one per word. addr must be 8-byte aligned
// (core.ErrUnalignedWrite otherwise); a final partial word is
// read-modified-written, preserving the bytes past len(p).
func (tx *Tx) WriteBytes(addr uint64, p []byte) error {
	if err := tx.active(); err != nil {
		return err
	}
	return tx.h.WriteBytes(addr, p)
}

// Read64 loads a word. Under UndoRedo reads are direct — writes are already
// applied in place; no logging. Under RedoOnly the transaction's private
// buffer overlays the shared image, so the transaction sees its own writes.
func (tx *Tx) Read64(addr uint64) uint64 { return tx.h.Read64(addr) }

// ReadBytes reads n bytes at addr, overlaying the transaction's own
// unpublished writes under RedoOnly.
func (tx *Tx) ReadBytes(addr uint64, n int) []byte { return tx.h.ReadBytes(addr, n) }

// Buffered reports whether this transaction stages writes in a private
// redo buffer (Options.CommitMode == RedoOnly) rather than applying them
// in place. Callers that read shared memory directly — bypassing
// Read64/ReadBytes — must consult the transaction's reads when this is
// true, or they will miss its own uncommitted writes.
func (tx *Tx) Buffered() bool { return tx.h.Buffered() }

// OnPublish registers fn to run exactly once inside Commit, after the
// transaction's END record has joined its shard log (fixing its commit
// order) and its writes are visible in shared memory — in place all along
// under UndoRedo, right after the private buffer is applied under RedoOnly
// — but strictly before Commit waits on any flush or fence. Rollback
// discards the hook. Structures that track write visibility (the kv
// index's seqlock windows and leaf latches) hang their close on this: it
// is the earliest point dependent writers may be admitted without
// breaking the shard log's commit-order prefix property, and it keeps
// latch-hold spans free of commit-wait time.
func (tx *Tx) OnPublish(fn func()) { tx.h.OnPublish(fn) }

// Observe attaches an observability span to the transaction: Commit will
// record its per-phase pipeline timings (latch wait, log append, group
// gather, flush+fence, publish) into span as well as the store-wide
// histograms. A nil span (or a store opened without Options.Obs) is free.
func (tx *Tx) Observe(span *obs.Span) { tx.h.Observe(span) }

// Alloc allocates a persistent block. The allocation itself is not undone
// by rollback (a crash or abort merely leaks it, as in the paper's model);
// allocate first, then publish the block with logged writes.
func (tx *Tx) Alloc(size int) uint64 { return tx.s.alloc.Alloc(size) }

// Free schedules deallocation of a block for after commit (a DELETE record,
// §4.3). The paper's Listing 2 places delete(n) after tm->commit; this API
// makes the deferral explicit and crash-safe: if the transaction rolls
// back, the block stays allocated.
func (tx *Tx) Free(addr uint64) error {
	if err := tx.active(); err != nil {
		return err
	}
	return tx.h.Delete(addr)
}

// Commit ends the transaction, making its updates durable (§4.3).
func (tx *Tx) Commit() error {
	if err := tx.active(); err != nil {
		return err
	}
	tx.done = true
	return tx.h.Commit()
}

// Rollback aborts the transaction, restoring every logged location to its
// previous value (§4.4).
func (tx *Tx) Rollback() error {
	if err := tx.active(); err != nil {
		return err
	}
	tx.done = true
	return tx.h.Rollback()
}

// Atomic runs fn inside a transaction — the library form of the paper's
// persistent_atomic block (Listing 1). A nil return commits; a non-nil
// return (or a panic, which is re-raised) rolls back. An injected NVM
// crash unwinding through the block is passed through untouched: a machine
// that lost power cannot run a rollback, and the recovery at the next Open
// aborts the transaction instead.
func (s *Store) Atomic(fn func(tx *Tx) error) error {
	return runAtomic(s.Begin(), fn)
}

// AtomicOn is Atomic with the transaction pinned to a log shard (BeginOn).
func (s *Store) AtomicOn(shard int, fn func(tx *Tx) error) error {
	return runAtomic(s.BeginOn(shard), fn)
}

func runAtomic(tx *Tx, fn func(tx *Tx) error) error {
	defer func() {
		if v := recover(); v != nil {
			if !tx.done && !nvm.IsCrash(v) {
				if rbErr := tx.Rollback(); rbErr != nil {
					panic(fmt.Sprintf("rewind: rollback during panic failed: %v (panic: %v)", rbErr, v))
				}
			}
			panic(v)
		}
	}()
	if err := fn(tx); err != nil {
		if rbErr := tx.Rollback(); rbErr != nil {
			return fmt.Errorf("rewind: rollback failed: %v (after %w)", rbErr, err)
		}
		return err
	}
	return tx.Commit()
}
